//===- tests/vm_block_test.cpp - Block engine ≡ reference interpreter -------===//
//
// Differential tests for the block-compiled execution engine
// (vm/BlockCache + Machine::runBlocks): on every workload and on an
// instrumented target, the block engine must produce exactly the state
// the reference step() interpreter produces — StopState, register file,
// FLAGS, PC, executed-instruction counts, and output bytes — including
// at every possible budget cutoff and across fault-hook redirects.
// Plus BlockCache invalidation coverage on loadObject.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "obj/Layout.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::vm;
using namespace teapot::workloads;

namespace {

struct EngineState {
  StopState Stop;
  CPU C;
  uint64_t Insts = 0;
  uint64_t Intrinsics = 0;
  std::vector<uint8_t> Output;
};

EngineState runEngine(const obj::ObjectFile &Bin, bool BlockEngine,
                      const std::vector<uint8_t> &Input, uint64_t Budget) {
  Machine M;
  M.UseBlockEngine = BlockEngine;
  cantFail(M.loadObject(Bin));
  M.setInput(Input);
  EngineState S;
  S.Stop = M.run(Budget);
  S.C = M.C;
  S.Insts = M.executedInsts();
  S.Intrinsics = M.executedIntrinsics();
  S.Output = M.output();
  return S;
}

void expectSameState(const EngineState &B, const EngineState &R,
                     const std::string &What) {
  EXPECT_EQ(B.Stop.Kind, R.Stop.Kind) << What;
  EXPECT_EQ(B.Stop.Fault, R.Stop.Fault) << What;
  EXPECT_EQ(B.Stop.FaultAddr, R.Stop.FaultAddr) << What;
  EXPECT_EQ(B.Stop.ExitStatus, R.Stop.ExitStatus) << What;
  EXPECT_EQ(B.C.PC, R.C.PC) << What;
  EXPECT_EQ(B.C.Flags, R.C.Flags) << What;
  for (unsigned I = 0; I != isa::NumRegs; ++I)
    EXPECT_EQ(B.C.R[I], R.C.R[I]) << What << " r" << I;
  EXPECT_EQ(B.Insts, R.Insts) << What;
  EXPECT_EQ(B.Intrinsics, R.Intrinsics) << What;
  EXPECT_EQ(B.Output, R.Output) << What;
}

class WorkloadDifferential
    : public ::testing::TestWithParam<const Workload *> {};

std::vector<const Workload *> allParams() {
  std::vector<const Workload *> Out;
  for (const Workload &W : allWorkloads())
    Out.push_back(&W);
  return Out;
}

} // namespace

// Every evaluation workload, on every seed plus the large crafted
// input: block engine ≡ reference interpreter, bit for bit.
TEST_P(WorkloadDifferential, BlockEngineMatchesReference) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  std::vector<std::vector<uint8_t>> Inputs = W.Seeds();
  Inputs.push_back(W.LargeInput(2500));
  for (const auto &In : Inputs) {
    EngineState B = runEngine(Bin, /*BlockEngine=*/true, In, 20'000'000);
    EngineState R = runEngine(Bin, /*BlockEngine=*/false, In, 20'000'000);
    expectSameState(B, R, std::string(W.Name) + "/" +
                              std::to_string(In.size()) + "B");
    EXPECT_GT(B.Insts, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadDifferential,
                         ::testing::ValuesIn(allParams()),
                         [](const auto &Info) {
                           return std::string(Info.param->Name);
                         });

// The Teapot-instrumented jsmn fixture: both engines drive the full
// runtime (speculation simulation, rollbacks, DIFT, coverage) to the
// same architectural results — StopState, registers, coverage maps,
// and gadget reports.
TEST(BlockEngineInstrumented, JsmnFixtureMatchesReference) {
  const Workload &W = *findWorkload("jsmn");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip();
  core::RewriteResult RW = rewriteOrDie(Bin);

  runtime::RuntimeOptions RT;
  InstrumentedTarget Block(RW, RT);
  InstrumentedTarget Ref(RW, RT);
  Ref.M.UseBlockEngine = false;

  std::vector<std::vector<uint8_t>> Inputs = W.Seeds();
  Inputs.push_back(W.LargeInput(1200));
  Inputs.push_back({'{', '[', '"', 0xff, 'x'}); // malformed on purpose
  for (const auto &In : Inputs) {
    Block.execute(In);
    Ref.execute(In);
    EXPECT_EQ(Block.LastStop.Kind, Ref.LastStop.Kind);
    EXPECT_EQ(Block.LastStop.ExitStatus, Ref.LastStop.ExitStatus);
    EXPECT_EQ(Block.M.C.PC, Ref.M.C.PC);
    EXPECT_EQ(Block.M.C.Flags, Ref.M.C.Flags);
    for (unsigned I = 0; I != isa::NumRegs; ++I)
      EXPECT_EQ(Block.M.C.R[I], Ref.M.C.R[I]) << "r" << I;
    EXPECT_EQ(Block.M.executedInsts(), Ref.M.executedInsts());
    EXPECT_EQ(Block.M.executedIntrinsics(), Ref.M.executedIntrinsics());
    EXPECT_EQ(Block.M.output(), Ref.M.output());
    EXPECT_EQ(Block.normalCoverage(), Ref.normalCoverage());
    EXPECT_EQ(Block.specCoverage(), Ref.specCoverage());
    EXPECT_EQ(Block.uniqueGadgets(), Ref.uniqueGadgets());
  }
  // The block engine actually engaged (this is not a trivial pass).
  EXPECT_GT(Block.M.blockCache().blockCount(), 0u);
  EXPECT_EQ(Ref.M.blockCache().blockCount(), 0u);
}

// Budget accounting must be *exact*: for every cutoff k, both engines
// stop at the same instruction with the same state. The program mixes
// straight-line ALU runs, loads/stores, calls, and a loop, so cutoffs
// land on every uop class including mid-block boundaries.
TEST(BlockEngineBudget, ExactAtEveryCutoff) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 0
    mov r1, 3
loop:
    st8 [buf], r1
    ld8 r2, [buf]
    add r0, r2
    call bump
    sub r1, 1
    cmp r1, 0
    j.ne loop
    halt
bump:
    add r0, 1
    ret
.bss
buf:
    .space 8
)");
  // Find the total step count first, then sweep every budget 0..N+2.
  EngineState Full = runEngine(Bin, false, {}, 1'000'000);
  ASSERT_EQ(Full.Stop.Kind, StopKind::Halted);
  for (uint64_t K = 0; K <= Full.Insts + 2; ++K) {
    EngineState B = runEngine(Bin, true, {}, K);
    EngineState R = runEngine(Bin, false, {}, K);
    expectSameState(B, R, "budget=" + std::to_string(K));
    if (K <= Full.Insts)
      EXPECT_EQ(B.Insts, K);
  }
}

// A fault-hook redirect consumes one budget unit without executing an
// instruction (the reference loop's accounting); the block engine must
// replicate that, and resume correctly at the redirect target.
TEST(BlockEngineFaults, HookRedirectBudgetParity) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r1, 0x300000000000
    ld8 r0, [r1]          ; faults: hook redirects to recover
    halt                  ; skipped
recover:
    mov r0, 55
    halt
)");
  const obj::Symbol *Rec = Bin.findSymbol("recover");
  ASSERT_NE(Rec, nullptr);
  for (uint64_t K = 0; K <= 8; ++K) {
    EngineState S[2];
    for (int E = 0; E != 2; ++E) {
      Machine M;
      M.UseBlockEngine = E == 0;
      cantFail(M.loadObject(Bin));
      M.FaultHook = [&](Machine &Mach, FaultKind, uint64_t) {
        Mach.C.PC = Rec->Addr;
        return true;
      };
      S[E].Stop = M.run(K);
      S[E].C = M.C;
      S[E].Insts = M.executedInsts();
      S[E].Output = M.output();
    }
    expectSameState(S[0], S[1], "hook budget=" + std::to_string(K));
  }
}

// An unhandled fault stops both engines with identical fault details.
TEST(BlockEngineFaults, UnhandledFaultParity) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 7
    mov r1, 0x300000000000
    st4 [r1], r0
    halt
)");
  EngineState B = runEngine(Bin, true, {}, 100);
  EngineState R = runEngine(Bin, false, {}, 100);
  expectSameState(B, R, "unhandled fault");
  EXPECT_EQ(B.Stop.Kind, StopKind::Fault);
  EXPECT_EQ(B.Stop.Fault, FaultKind::BadMemory);
}

// loadObject must invalidate the block cache: after loading a second
// binary with different code at the same addresses, stale blocks from
// the first binary must not execute.
TEST(BlockCacheInvalidation, LoadObjectDropsBlocks) {
  auto BinA = assembleOrDie(R"(
.text
main:
    mov r0, 1
    add r0, 10
    halt
)");
  auto BinB = assembleOrDie(R"(
.text
main:
    mov r0, 2
    mul r0, 30
    halt
)");
  Machine M;
  cantFail(M.loadObject(BinA));
  EXPECT_EQ(M.run(100).ExitStatus, 11u);
  size_t BlocksA = M.blockCache().blockCount();
  EXPECT_GT(BlocksA, 0u);

  cantFail(M.loadObject(BinB));
  EXPECT_EQ(M.blockCache().blockCount(), 0u) << "stale blocks survived";
  EXPECT_EQ(M.run(100).ExitStatus, 60u)
      << "executed stale code from the previous image";
}

// A guest store into the code region (any fuzzed wild store can reach
// it) must invalidate decoded blocks — including the rest of the block
// the store itself sits in, which decode-ahead compiled from the
// pre-store bytes. Both engines must fault identically at the smashed
// instruction.
TEST(BlockEngineCoherence, GuestStoreIntoCodeRegion) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 1
    st1 [patch], 0xff     ; smash the opcode of the next instruction
patch:
    mov r0, 2             ; decoded ahead of time, never validly executed
    halt
)");
  EngineState B = runEngine(Bin, true, {}, 100);
  EngineState R = runEngine(Bin, false, {}, 100);
  expectSameState(B, R, "store into code");
  EXPECT_EQ(B.Stop.Kind, StopKind::Fault);
  EXPECT_EQ(B.Stop.Fault, FaultKind::BadFetch);
  EXPECT_EQ(B.C.R[isa::R0], 1u) << "stale pre-store decode executed";
}

// Chained hot loops and the sentinel return path: a RET from the entry
// lands on the halt sentinel, which has no block (outside the code
// region) and must halt identically on both engines.
TEST(BlockEngine, SentinelReturnParity) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r0, 3
    mov r1, 100
again:
    add r0, 2
    sub r1, 1
    cmp r1, 0
    j.ne again
    ret
)");
  EngineState B = runEngine(Bin, true, {}, 10'000);
  EngineState R = runEngine(Bin, false, {}, 10'000);
  expectSameState(B, R, "sentinel return");
  EXPECT_EQ(B.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(B.Stop.ExitStatus, 203u);
}

// The accumulated-output cap (MaxOutputBytes): output stops growing at
// the cap, identically on both engines, and the guest still runs to
// completion.
TEST(BlockEngine, OutputCapKnob) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r3, 8            ; 8 writes of 16 bytes = 128 bytes total
loop:
    mov r0, buf
    mov r1, 16
    ext 3                ; write_out
    sub r3, 1
    cmp r3, 0
    j.ne loop
    mov r0, 0
    halt
.data
buf:
    .quad 0x1111111111111111
    .quad 0x2222222222222222
)");
  for (bool Block : {true, false}) {
    Machine M;
    M.UseBlockEngine = Block;
    M.MaxOutputBytes = 40; // cap mid-write: 2 full writes + 8 bytes
    cantFail(M.loadObject(Bin));
    StopState S = M.run(10'000);
    EXPECT_EQ(S.Kind, StopKind::Halted);
    EXPECT_EQ(S.ExitStatus, 0u);
    EXPECT_EQ(M.output().size(), 40u);
  }
}
