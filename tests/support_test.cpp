//===- tests/support_test.cpp - support library tests ----------------------===//

#include "support/ByteStream.h"
#include "support/Error.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace teapot;

TEST(Error, SuccessAndFailure) {
  Error Ok = Error::success();
  EXPECT_FALSE(Ok);
  Error Bad = makeError("thing %d went wrong", 42);
  EXPECT_TRUE(Bad);
  EXPECT_EQ(Bad.message(), "thing 42 went wrong");
}

TEST(Expected, ValueAndError) {
  Expected<int> V(7);
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 7);
  Expected<int> E(makeError("nope"));
  ASSERT_FALSE(E);
  EXPECT_EQ(E.message(), "nope");
  Error Taken = E.takeError();
  EXPECT_TRUE(Taken);
}

TEST(Expected, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(3)), 3);
  cantFail(Error::success());
}

TEST(RNG, Deterministic) {
  RNG A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, BelowStaysInBound) {
  RNG R(5);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RNG, RangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    uint64_t V = R.range(3, 6);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 6u);
    SawLo |= V == 3;
    SawHi |= V == 6;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNG, ChanceRoughlyFair) {
  RNG R(77);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(1, 2);
  EXPECT_GT(Hits, 4500);
  EXPECT_LT(Hits, 5500);
}

TEST(RNG, ForkIndependent) {
  RNG A(1);
  RNG B = A.fork();
  EXPECT_NE(A.next(), B.next());
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtils, ParseInt) {
  int64_t V;
  EXPECT_TRUE(parseInt("42", V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(parseInt("-7", V));
  EXPECT_EQ(V, -7);
  EXPECT_TRUE(parseInt("0x10", V));
  EXPECT_EQ(V, 16);
  EXPECT_TRUE(parseInt("  12 ", V));
  EXPECT_EQ(V, 12);
  EXPECT_FALSE(parseInt("12x", V));
  EXPECT_FALSE(parseInt("", V));
  EXPECT_FALSE(parseInt("-", V));
}

TEST(StringUtils, ToHex) {
  EXPECT_EQ(toHex(0x401000), "0x401000");
  EXPECT_EQ(toHex(0), "0x0");
}

TEST(ByteStream, Roundtrip) {
  ByteWriter W;
  W.u8(7);
  W.u16(0xbeef);
  W.u32(0xdeadbeef);
  W.u64(0x123456789abcdef0ULL);
  W.str("hello");
  ByteReader R(W.Out);
  uint8_t A;
  uint16_t B;
  uint32_t C;
  uint64_t D;
  std::string S;
  ASSERT_TRUE(R.u8(A));
  ASSERT_TRUE(R.u16(B));
  ASSERT_TRUE(R.u32(C));
  ASSERT_TRUE(R.u64(D));
  ASSERT_TRUE(R.str(S));
  EXPECT_EQ(A, 7);
  EXPECT_EQ(B, 0xbeef);
  EXPECT_EQ(C, 0xdeadbeefu);
  EXPECT_EQ(D, 0x123456789abcdef0ULL);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(R.done());
}

TEST(ByteStream, TruncationDetected) {
  ByteWriter W;
  W.u32(5);
  ByteReader R(W.Out);
  uint64_t V;
  EXPECT_FALSE(R.u64(V));
}
