//===- tests/support_test.cpp - support library tests ----------------------===//

#include "support/ByteStream.h"
#include "support/Error.h"
#include "support/Json.h"
#include "support/RNG.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace teapot;

TEST(Error, SuccessAndFailure) {
  Error Ok = Error::success();
  EXPECT_FALSE(Ok);
  Error Bad = makeError("thing %d went wrong", 42);
  EXPECT_TRUE(Bad);
  EXPECT_EQ(Bad.message(), "thing 42 went wrong");
}

TEST(Expected, ValueAndError) {
  Expected<int> V(7);
  ASSERT_TRUE(V);
  EXPECT_EQ(*V, 7);
  Expected<int> E(makeError("nope"));
  ASSERT_FALSE(E);
  EXPECT_EQ(E.message(), "nope");
  Error Taken = E.takeError();
  EXPECT_TRUE(Taken);
}

TEST(Expected, CantFailUnwraps) {
  EXPECT_EQ(cantFail(Expected<int>(3)), 3);
  cantFail(Error::success());
}

TEST(RNG, Deterministic) {
  RNG A(123), B(123);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RNG, BelowStaysInBound) {
  RNG R(5);
  for (int I = 0; I != 10000; ++I)
    EXPECT_LT(R.below(17), 17u);
}

TEST(RNG, RangeInclusive) {
  RNG R(9);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I != 5000; ++I) {
    uint64_t V = R.range(3, 6);
    EXPECT_GE(V, 3u);
    EXPECT_LE(V, 6u);
    SawLo |= V == 3;
    SawHi |= V == 6;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RNG, ChanceRoughlyFair) {
  RNG R(77);
  int Hits = 0;
  for (int I = 0; I != 10000; ++I)
    Hits += R.chance(1, 2);
  EXPECT_GT(Hits, 4500);
  EXPECT_LT(Hits, 5500);
}

TEST(RNG, ForkIndependent) {
  RNG A(1);
  RNG B = A.fork();
  EXPECT_NE(A.next(), B.next());
}

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  hi  "), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(StringUtils, Split) {
  auto Parts = split("a,b,,c", ',');
  ASSERT_EQ(Parts.size(), 4u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "");
  EXPECT_EQ(split("", ',').size(), 1u);
}

TEST(StringUtils, ParseInt) {
  int64_t V;
  EXPECT_TRUE(parseInt("42", V));
  EXPECT_EQ(V, 42);
  EXPECT_TRUE(parseInt("-7", V));
  EXPECT_EQ(V, -7);
  EXPECT_TRUE(parseInt("0x10", V));
  EXPECT_EQ(V, 16);
  EXPECT_TRUE(parseInt("  12 ", V));
  EXPECT_EQ(V, 12);
  EXPECT_FALSE(parseInt("12x", V));
  EXPECT_FALSE(parseInt("", V));
  EXPECT_FALSE(parseInt("-", V));
}

TEST(StringUtils, ToHex) {
  EXPECT_EQ(toHex(0x401000), "0x401000");
  EXPECT_EQ(toHex(0), "0x0");
}

TEST(StringUtils, ParseUIntAcceptsWellFormed) {
  EXPECT_EQ(cantFail(support::parseUInt("42")), 42u);
  EXPECT_EQ(cantFail(support::parseUInt("0")), 0u);
  EXPECT_EQ(cantFail(support::parseUInt("0x10")), 16u);
  EXPECT_EQ(cantFail(support::parseUInt("  7 ")), 7u);
  EXPECT_EQ(cantFail(support::parseUInt("18446744073709551615")),
            0xffffffffffffffffULL);
}

TEST(StringUtils, ParseUIntDiagnosesGarbage) {
  // The strtoull failure mode this replaces: "banana" parsed as 0.
  auto Banana = support::parseUInt("banana");
  ASSERT_FALSE(static_cast<bool>(Banana));
  EXPECT_NE(Banana.message().find("banana"), std::string::npos);

  EXPECT_FALSE(static_cast<bool>(support::parseUInt("")));
  EXPECT_FALSE(static_cast<bool>(support::parseUInt("-3")));
  EXPECT_FALSE(static_cast<bool>(support::parseUInt("12x")));
  EXPECT_FALSE(static_cast<bool>(support::parseUInt("1 2")));
  // One past UINT64_MAX overflows.
  EXPECT_FALSE(static_cast<bool>(support::parseUInt("18446744073709551616")));
}

TEST(StringUtils, ParseUIntEnforcesBound) {
  EXPECT_EQ(cantFail(support::parseUInt("8", "workers", 8)), 8u);
  auto Over = support::parseUInt("9", "workers", 8);
  ASSERT_FALSE(static_cast<bool>(Over));
  EXPECT_NE(Over.message().find("workers"), std::string::npos);
  EXPECT_NE(Over.message().find("exceeds"), std::string::npos);
}

TEST(ByteStream, Roundtrip) {
  ByteWriter W;
  W.u8(7);
  W.u16(0xbeef);
  W.u32(0xdeadbeef);
  W.u64(0x123456789abcdef0ULL);
  W.str("hello");
  ByteReader R(W.Out);
  uint8_t A;
  uint16_t B;
  uint32_t C;
  uint64_t D;
  std::string S;
  ASSERT_TRUE(R.u8(A));
  ASSERT_TRUE(R.u16(B));
  ASSERT_TRUE(R.u32(C));
  ASSERT_TRUE(R.u64(D));
  ASSERT_TRUE(R.str(S));
  EXPECT_EQ(A, 7);
  EXPECT_EQ(B, 0xbeef);
  EXPECT_EQ(C, 0xdeadbeefu);
  EXPECT_EQ(D, 0x123456789abcdef0ULL);
  EXPECT_EQ(S, "hello");
  EXPECT_TRUE(R.done());
}

TEST(ByteStream, TruncationDetected) {
  ByteWriter W;
  W.u32(5);
  ByteReader R(W.Out);
  uint64_t V;
  EXPECT_FALSE(R.u64(V));
}

//===----------------------------------------------------------------------===//
// JSON
//===----------------------------------------------------------------------===//

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(json::Value(nullptr).dump(), "null");
  EXPECT_EQ(json::Value(true).dump(), "true");
  EXPECT_EQ(json::Value(false).dump(), "false");
  EXPECT_EQ(json::Value(0).dump(), "0");
  EXPECT_EQ(json::Value(-12).dump(), "-12");
  EXPECT_EQ(json::Value(0xffffffffffffffffULL).dump(),
            "18446744073709551615");
  EXPECT_EQ(json::Value("hi \"there\"\n").dump(), "\"hi \\\"there\\\"\\n\"");
}

TEST(Json, UInt64KeepsExactness) {
  // A 64-bit site address must not round through a double.
  uint64_t Site = 0xfedcba9876543210ULL;
  json::Value V(Site);
  auto Back = cantFail(json::parse(V.dump()));
  ASSERT_TRUE(Back.isUInt());
  EXPECT_EQ(Back.asUInt(), Site);
}

TEST(Json, DoubleRoundTrips) {
  for (double D : {0.1, 1e-9, 123456.789, 0.1234567890123456789, 3.0}) {
    json::Value V(D);
    auto Back = cantFail(json::parse(V.dump()));
    EXPECT_EQ(Back.asDouble(), D) << V.dump();
    // Canonical: re-dumping the parsed value is byte-identical.
    EXPECT_EQ(Back.dump(), V.dump());
  }
}

TEST(Json, ObjectsAreInsertionOrdered) {
  json::Value O = json::Value::object();
  O.set("zebra", 1);
  O.set("alpha", 2);
  O.set("mid", json::Value::array());
  EXPECT_EQ(O.dump(), "{\"zebra\":1,\"alpha\":2,\"mid\":[]}");
  O.set("zebra", 9); // overwrite keeps position
  EXPECT_EQ(O.dump(), "{\"zebra\":9,\"alpha\":2,\"mid\":[]}");
}

TEST(Json, ParseNestedDocument) {
  auto V = cantFail(json::parse(
      " { \"a\" : [ 1 , -2 , 2.5 , \"s\" , true , null ] , "
      "\"b\" : { \"c\" : {} } } "));
  ASSERT_TRUE(V.isObject());
  const json::Value *A = V.find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->size(), 6u);
  EXPECT_EQ(A->items()[0].asUInt(), 1u);
  EXPECT_EQ(A->items()[1].asInt(), -2);
  EXPECT_EQ(A->items()[2].asDouble(), 2.5);
  EXPECT_EQ(A->items()[3].asString(), "s");
  EXPECT_TRUE(A->items()[4].asBool());
  EXPECT_TRUE(A->items()[5].isNull());
  ASSERT_NE(V.find("b"), nullptr);
  EXPECT_NE(V.find("b")->find("c"), nullptr);
  EXPECT_EQ(V.find("nope"), nullptr);
}

TEST(Json, ParseStringEscapes) {
  auto V = cantFail(json::parse(R"("a\"b\\c\nd\u0041e")"));
  EXPECT_EQ(V.asString(), "a\"b\\c\ndAe");
}

TEST(Json, SurrogatePairsDecodeToUtf8) {
  // U+1F600 as a \u escape pair must decode to 4-byte UTF-8, not two
  // 3-byte CESU-8 sequences.
  auto V = cantFail(json::parse(R"("\ud83d\ude00")"));
  EXPECT_EQ(V.asString(), "\xf0\x9f\x98\x80");
  // Lone or misordered surrogates would be invalid UTF-8 -> errors.
  EXPECT_FALSE(static_cast<bool>(json::parse(R"("\ud83d")")));
  EXPECT_FALSE(static_cast<bool>(json::parse(R"("\ude00")")));
  EXPECT_FALSE(static_cast<bool>(json::parse(R"("\ud83dxx")")));
  EXPECT_FALSE(static_cast<bool>(json::parse(R"("\ud83dA")")));
}

TEST(Json, ParserDiagnosesMalformedInput) {
  EXPECT_FALSE(static_cast<bool>(json::parse("")));
  EXPECT_FALSE(static_cast<bool>(json::parse("{")));
  EXPECT_FALSE(static_cast<bool>(json::parse("[1,]")));
  EXPECT_FALSE(static_cast<bool>(json::parse("{\"a\" 1}")));
  EXPECT_FALSE(static_cast<bool>(json::parse("\"unterminated")));
  EXPECT_FALSE(static_cast<bool>(json::parse("01")));
  EXPECT_FALSE(static_cast<bool>(json::parse("-012")));
  EXPECT_FALSE(static_cast<bool>(json::parse("01x")));
  EXPECT_FALSE(static_cast<bool>(json::parse("1 trailing")));
  EXPECT_FALSE(static_cast<bool>(json::parse("1e999"))); // overflows to Inf
  // Hostile nesting must error, not smash the stack.
  auto Deep = json::parse(std::string(1000000, '['));
  ASSERT_FALSE(static_cast<bool>(Deep));
  EXPECT_NE(Deep.message().find("nesting too deep"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(json::parse("truth")));
  auto E = json::parse("{\"a\": nope}");
  ASSERT_FALSE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("offset"), std::string::npos);
}

TEST(Json, PrettyPrintIsStable) {
  json::Value O = json::Value::object();
  O.set("n", 1);
  json::Value A = json::Value::array();
  A.push("x");
  O.set("a", std::move(A));
  EXPECT_EQ(O.dump(true), "{\n  \"n\": 1,\n  \"a\": [\n    \"x\"\n  ]\n}");
  auto Back = cantFail(json::parse(O.dump(true)));
  EXPECT_EQ(Back.dump(), O.dump());
}
