//===- tests/scandiff_test.cpp - Cross-scan diff semantics ------------------===//
//
// The diff contracts (docs/API.md):
//
//   - gadget identity is (site, channel); controllability is the
//     classification being compared
//   - new = progress, lost = regression, changed = regression only when
//     the classification weakened (User > Massage > Unknown)
//   - --injected-only restricts regression accounting to the baseline's
//     injected ground-truth sites
//   - identical scans diff clean (exit 0 in the tool; hasRegressions()
//     false here)
//
//===----------------------------------------------------------------------===//

#include "api/ScanDiff.h"

#include <gtest/gtest.h>

using namespace teapot;
using runtime::Channel;
using runtime::Controllability;
using runtime::GadgetReport;

namespace {

GadgetReport gadget(uint64_t Site, Channel Chan, Controllability Ctrl) {
  GadgetReport G;
  G.Site = Site;
  G.Chan = Chan;
  G.Ctrl = Ctrl;
  return G;
}

/// A minimal ScanResult carrying the given key-ordered gadget set.
ScanResult scanWith(std::vector<GadgetReport> Gadgets) {
  ScanResult R;
  R.Workload = "jsmn";
  R.Preset = "teapot";
  R.Executions = 400;
  R.NormalEdges = 40;
  R.SpecEdges = 120;
  R.CorpusSize = 60;
  R.WallSeconds = 2.0;
  R.GuestInsts = 4000;
  R.Gadgets = std::move(Gadgets);
  return R;
}

} // namespace

TEST(ScanDiff, IdenticalScansDiffClean) {
  ScanResult A = scanWith({gadget(0x10, Channel::Cache, Controllability::User),
                           gadget(0x20, Channel::MDS, Controllability::Massage)});
  ScanDiff D = diffScans(A, A);
  EXPECT_TRUE(D.NewGadgets.empty());
  EXPECT_TRUE(D.LostGadgets.empty());
  EXPECT_TRUE(D.ChangedGadgets.empty());
  EXPECT_FALSE(D.hasRegressions());
  EXPECT_EQ(D.NormalEdgeDelta, 0);
  EXPECT_EQ(D.ExecutionsDelta, 0);
}

TEST(ScanDiff, NewGadgetIsNotARegression) {
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::User)});
  ScanResult After = scanWith({gadget(0x10, Channel::Cache,
                                      Controllability::User),
                               gadget(0x30, Channel::Port,
                                      Controllability::Massage)});
  ScanDiff D = diffScans(Before, After);
  ASSERT_EQ(D.NewGadgets.size(), 1u);
  EXPECT_EQ(D.NewGadgets[0].Site, 0x30u);
  EXPECT_TRUE(D.LostGadgets.empty());
  EXPECT_FALSE(D.hasRegressions());
  EXPECT_EQ(D.GadgetCountDelta, 1);
}

TEST(ScanDiff, LostGadgetIsARegression) {
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::User),
                                gadget(0x20, Channel::MDS,
                                       Controllability::User)});
  ScanResult After = scanWith({gadget(0x10, Channel::Cache,
                                      Controllability::User)});
  ScanDiff D = diffScans(Before, After);
  ASSERT_EQ(D.LostGadgets.size(), 1u);
  EXPECT_EQ(D.LostGadgets[0].Site, 0x20u);
  EXPECT_TRUE(D.hasRegressions());
  ASSERT_EQ(D.RegressedLost.size(), 1u);
}

TEST(ScanDiff, WeakenedControllabilityIsARegression) {
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::User)});
  ScanResult After = scanWith({gadget(0x10, Channel::Cache,
                                      Controllability::Unknown)});
  ScanDiff D = diffScans(Before, After);
  EXPECT_TRUE(D.NewGadgets.empty());
  EXPECT_TRUE(D.LostGadgets.empty());
  ASSERT_EQ(D.ChangedGadgets.size(), 1u);
  EXPECT_TRUE(D.ChangedGadgets[0].Weakened);
  EXPECT_TRUE(D.hasRegressions());
  ASSERT_EQ(D.RegressedChanged.size(), 1u);
}

TEST(ScanDiff, StrengthenedControllabilityIsNotARegression) {
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::Unknown)});
  ScanResult After = scanWith({gadget(0x10, Channel::Cache,
                                      Controllability::User)});
  ScanDiff D = diffScans(Before, After);
  ASSERT_EQ(D.ChangedGadgets.size(), 1u);
  EXPECT_FALSE(D.ChangedGadgets[0].Weakened);
  EXPECT_FALSE(D.hasRegressions());
}

TEST(ScanDiff, SameSiteDifferentChannelIsNewPlusLost) {
  // The channel is part of the gadget's identity: a Cache leak at a
  // site is not "the same gadget" as a Port leak there.
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::User)});
  ScanResult After = scanWith({gadget(0x10, Channel::Port,
                                      Controllability::User)});
  ScanDiff D = diffScans(Before, After);
  EXPECT_EQ(D.NewGadgets.size(), 1u);
  EXPECT_EQ(D.LostGadgets.size(), 1u);
  EXPECT_TRUE(D.ChangedGadgets.empty());
  EXPECT_TRUE(D.hasRegressions());
}

TEST(ScanDiff, InjectedOnlyIgnoresIncidentalChurn) {
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::User),
                                gadget(0x999, Channel::MDS,
                                       Controllability::User)});
  Before.InjectedSites = {0x10};
  // Both the injected site's gadget and the incidental one vanish.
  ScanResult After = scanWith({});

  ScanDiffOptions Opts;
  Opts.InjectedOnly = true;
  ScanDiff D = diffScans(Before, After, Opts);
  EXPECT_EQ(D.LostGadgets.size(), 2u) << "full lists stay complete";
  ASSERT_EQ(D.RegressedLost.size(), 1u)
      << "only the injected site gates";
  EXPECT_EQ(D.RegressedLost[0].Site, 0x10u);
  EXPECT_TRUE(D.hasRegressions());

  // Losing only the incidental gadget is not a gated regression.
  ScanResult After2 = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::User)});
  ScanDiff D2 = diffScans(Before, After2, Opts);
  EXPECT_EQ(D2.LostGadgets.size(), 1u);
  EXPECT_FALSE(D2.hasRegressions());
}

TEST(ScanDiff, UnorderedBaselineStillGatesOnTheStrongestRecord) {
  // A baseline from external tooling may not be key-ordered; the
  // strongest (minimum-enum) controllability per identity must win
  // regardless of record order, or a weakened gadget slips the gate.
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::Unknown),
                                gadget(0x10, Channel::Cache,
                                       Controllability::User)});
  ScanResult After = scanWith({gadget(0x10, Channel::Cache,
                                      Controllability::Unknown)});
  ScanDiff D = diffScans(Before, After);
  ASSERT_EQ(D.ChangedGadgets.size(), 1u);
  EXPECT_EQ(D.ChangedGadgets[0].Before.Ctrl, Controllability::User);
  EXPECT_TRUE(D.ChangedGadgets[0].Weakened);
  EXPECT_TRUE(D.hasRegressions());
}

TEST(ScanDiff, CoverageAndThroughputDeltas) {
  ScanResult Before = scanWith({});
  ScanResult After = scanWith({});
  After.NormalEdges = 50;  // +10
  After.SpecEdges = 100;   // -20
  After.CorpusSize = 90;   // +30
  After.Executions = 800;  // +400
  After.WallSeconds = 1.0; // throughput 200 -> 800
  ScanDiff D = diffScans(Before, After);
  EXPECT_EQ(D.NormalEdgeDelta, 10);
  EXPECT_EQ(D.SpecEdgeDelta, -20);
  EXPECT_EQ(D.CorpusSizeDelta, 30);
  EXPECT_EQ(D.ExecutionsDelta, 400);
  EXPECT_DOUBLE_EQ(D.ExecsPerSecBefore, 200.0);
  EXPECT_DOUBLE_EQ(D.ExecsPerSecAfter, 800.0);
}

TEST(ScanDiff, JsonReportShape) {
  ScanResult Before = scanWith({gadget(0x10, Channel::Cache,
                                       Controllability::User),
                                gadget(0x20, Channel::MDS,
                                       Controllability::User)});
  Before.InjectedSites = {0x20};
  ScanResult After = scanWith({gadget(0x30, Channel::Port,
                                      Controllability::Massage)});
  ScanDiffOptions Opts;
  Opts.InjectedOnly = true;
  ScanDiff D = diffScans(Before, After, Opts);

  json::Value V = D.toJson();
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.find("schema")->asString(), "teapot.diff.v1");
  EXPECT_EQ(V.find("workload")->asString(), "jsmn");
  EXPECT_EQ(V.find("new")->size(), 1u);
  EXPECT_EQ(V.find("lost")->size(), 2u);
  const json::Value *Reg = V.find("regressions");
  ASSERT_NE(Reg, nullptr);
  EXPECT_TRUE(Reg->find("injected_only")->asBool());
  EXPECT_EQ(Reg->find("lost")->size(), 1u);
  EXPECT_EQ(Reg->find("count")->asUInt(), 1u);
  // Stable serialization: dump twice, byte-identical.
  EXPECT_EQ(V.dump(true), D.toJson().dump(true));

  // The human report names the verdict.
  EXPECT_NE(D.describe().find("FAIL"), std::string::npos);
  ScanDiff Clean = diffScans(Before, Before, Opts);
  EXPECT_NE(Clean.describe().find("OK"), std::string::npos);
}
