//===- tests/baselines_test.cpp - SpecFuzz / SpecTaint baselines -------------===//

#include "TestUtil.h"
#include "baselines/SpecFuzz.h"
#include "baselines/SpecTaint.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::baselines;
using namespace teapot::workloads;

namespace {

const char *V1Victim = R"(
int main() {
  char idx8[8];
  read_input(idx8, 1);
  int idx = idx8[0];
  char *buf = malloc(64);
  int acc = 0;
  if (idx < 64) {
    int v = buf[idx];
    acc = buf[v & 63];
  }
  return acc;
}
)";

} // namespace

//===----------------------------------------------------------------------===//
// SpecFuzz-style baseline (guarded single copy)
//===----------------------------------------------------------------------===//

TEST(SpecFuzzBaseline, SingleCopyHasNoShadowRange) {
  auto RW = specFuzzRewriteBinary(compileOrDie(V1Victim));
  ASSERT_TRUE(RW) << RW.message();
  EXPECT_EQ(RW->Meta.ShadowTextStart, RW->Meta.ShadowTextEnd);
  EXPECT_TRUE(RW->Meta.FuncMap.empty());
  EXPECT_TRUE(RW->Meta.MarkerSites.empty());
  EXPECT_FALSE(RW->Meta.Trampolines.empty());
}

TEST(SpecFuzzBaseline, PreservesSemanticsAndDetects) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  RunResult Native = runNative(Bin, {20});
  auto RW = specFuzzRewriteBinary(Bin);
  ASSERT_TRUE(RW);
  InstrumentedTarget T(*RW, specFuzzRuntimeOptions());
  T.execute({20});
  EXPECT_EQ(T.LastStop.ExitStatus, Native.Stop.ExitStatus);
  T.execute({200});
  EXPECT_GT(T.RT.Reports.count(runtime::Controllability::Unknown,
                               runtime::Channel::Asan),
            0u);
}

TEST(SpecFuzzBaseline, ExecutesGuardedSitesInNormalMode) {
  // The whole point of Speculation Shadows: under the *same* detection
  // policy (ASan-only), the baseline runs its guarded instrumentation
  // during normal execution while Teapot's Real Copy carries almost
  // none of it (Listing 3 vs Section 5).
  obj::ObjectFile Bin = compileOrDie(V1Victim);

  auto SFRW = specFuzzRewriteBinary(Bin);
  ASSERT_TRUE(SFRW);
  runtime::RuntimeOptions NoSim = specFuzzRuntimeOptions();
  NoSim.SimulateSpeculation = false;
  InstrumentedTarget SF(*SFRW, NoSim);

  core::RewriterOptions TO;
  TO.EnableDift = false; // match the baseline's ASan-only policy
  auto TRW = core::rewriteBinary(Bin, TO);
  ASSERT_TRUE(TRW);
  runtime::RuntimeOptions TNoSim;
  TNoSim.SimulateSpeculation = false;
  TNoSim.EnableDift = false;
  InstrumentedTarget TP(*TRW, TNoSim);

  // Count instrumentation executed with simulation suppressed entirely:
  // the pure normal-mode cost the guards impose.
  SF.execute({20});
  TP.execute({20});
  // Instrumented work executed by the baseline in normal mode should
  // clearly exceed Teapot's (guards at every load/store/restore point).
  EXPECT_GT(SF.M.executedIntrinsics(), TP.M.executedIntrinsics() * 2)
      << "baseline=" << SF.M.executedIntrinsics()
      << " teapot=" << TP.M.executedIntrinsics();
}

//===----------------------------------------------------------------------===//
// SpecTaint-style emulator
//===----------------------------------------------------------------------===//

TEST(SpecTaintEmulator, PreservesSemantics) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  RunResult Native = runNative(Bin, {20});
  EmulatorTarget T(Bin, SpecTaintOptions{});
  T.execute({20});
  EXPECT_EQ(T.LastStop.Kind, vm::StopKind::Halted);
  EXPECT_EQ(T.LastStop.ExitStatus, Native.Stop.ExitStatus);
  EXPECT_GT(T.E.Stats.EmulatedInsts, 0u);
}

TEST(SpecTaintEmulator, DetectsTaintedSpeculativeAccess) {
  EmulatorTarget T(compileOrDie(V1Victim), SpecTaintOptions{});
  T.execute({200});
  EXPECT_GT(T.E.Reports.unique().size(), 0u);
}

TEST(SpecTaintEmulator, FiveTriesHeuristicStopsSimulating) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  SpecTaintOptions O;
  O.Tries = 2;
  EmulatorTarget T(Bin, O);
  T.execute({20});
  uint64_t SimsAfterFirst = T.E.Stats.Simulations;
  EXPECT_GT(SimsAfterFirst, 0u);
  // Branch try counters persist across runs: eventually every branch is
  // exhausted and simulations stop growing.
  for (int I = 0; I != 6; ++I)
    T.execute({20});
  uint64_t Later = T.E.Stats.Simulations;
  T.execute({20});
  EXPECT_EQ(T.E.Stats.Simulations, Later)
      << "branch try budget failed to cap simulations";
}

TEST(SpecTaintEmulator, EmulationCostExceedsNative) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  NativeTarget N(Bin);
  N.execute({20});
  uint64_t NativeInsts = N.M.executedInsts();

  SpecTaintOptions O;
  EmulatorTarget T(Bin, O);
  T.execute({20});
  // The emulator executes at least as many guest instructions (plus all
  // the speculative ones).
  EXPECT_GT(T.E.Stats.EmulatedInsts, NativeInsts);
}

TEST(SpecTaintEmulator, RollbackRestoresState) {
  const char *Writer = R"(
int g;
int main() {
  char b[8];
  read_input(b, 1);
  g = 5;
  if (b[0] < 4) { g = 9; }
  return g;
}
)";
  EmulatorTarget T(compileOrDie(Writer), SpecTaintOptions{});
  T.execute({99});
  EXPECT_EQ(T.LastStop.ExitStatus, 5u)
      << "speculative store must be rolled back";
  EXPECT_GT(T.E.Stats.Rollbacks, 0u);
}
