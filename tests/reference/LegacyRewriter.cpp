//===- tests/reference/LegacyRewriter.cpp - Pre-refactor rewriter ----------===//
//
// The pre-refactor src/core/TeapotRewriter.cpp (plus the
// src/rewriting/Clone.cpp helpers it used), kept as the equivalence
// oracle for the pass-pipeline refactor. Only mechanical changes were
// made: namespace legacyref, LegacyRewriteResult instead of
// core::RewriteResult, and the clone helpers inlined.
//
//===----------------------------------------------------------------------===//

#include "reference/LegacyRewriter.h"

#include "core/TagProgramBuilder.h"
#include "disasm/Disassembler.h"
#include "ir/Layout.h"
#include "obj/Layout.h"

#include <map>
#include <set>

using namespace teapot;
using namespace teapot::core;
using namespace teapot::legacyref;
using namespace teapot::isa;
using namespace teapot::ir;

namespace {

// --- formerly src/rewriting/Clone.{h,cpp} ---

void cloneShadowFunctions(Module &M) {
  const uint32_t NumReal = static_cast<uint32_t>(M.Funcs.size());
  M.Funcs.reserve(NumReal * 2);

  for (uint32_t F = 0; F != NumReal; ++F) {
    Function Clone = M.Funcs[F]; // byte-for-byte copy
    Clone.Name += "$spec";
    Clone.IsShadow = true;
    Clone.ShadowOf = F;
    Clone.ShadowIdx = NoIdx;
    M.Funcs[F].ShadowIdx = NumReal + F;

    auto Remap = [&](BlockRef &R) {
      assert(R.Func < NumReal && "clone input already references a shadow");
      R.Func += NumReal;
    };
    for (BasicBlock &B : Clone.Blocks) {
      if (B.TakenSucc)
        Remap(*B.TakenSucc);
      if (B.FallSucc)
        Remap(*B.FallSucc);
      for (BlockRef &R : B.IndirectSuccs)
        Remap(R);
      for (Inst &In : B.Insts) {
        if (In.Target)
          Remap(*In.Target);
        if (In.Callee != NoIdx)
          In.Callee += NumReal;
        // FuncImm deliberately left pointing at the Real Copy.
      }
    }
    M.Funcs.push_back(std::move(Clone));
  }
}

BlockRef shadowBlock(const Module &M, BlockRef Real) {
  uint32_t SIdx = M.Funcs[Real.Func].ShadowIdx;
  assert(SIdx != NoIdx && "function has no shadow copy");
  return {SIdx, Real.Block};
}

// --- formerly src/core/TeapotRewriter.cpp ---

int64_t sitePayload(uint64_t OrigAddr, unsigned Size, bool IsWrite) {
  return static_cast<int64_t>((OrigAddr << 16) |
                              (static_cast<uint64_t>(IsWrite) << 8) | Size);
}

bool isAllowlistedAccess(const MemRef &M) {
  return (M.Base == SP || M.Base == FP) && M.Index == NoReg;
}

class Rewriter {
public:
  Rewriter(Module &M, const RewriterOptions &Opts) : M(M), Opts(Opts) {}

  Expected<LegacyRewriteResult> run();

private:
  Module &M;
  const RewriterOptions &Opts;
  uint32_t NumReal = 0;
  bool Shadows() const { return Opts.Mode == RewriteMode::Teapot; }

  std::vector<BlockRef> TrampolineRefs; // branch id -> trampoline block
  std::map<std::pair<uint32_t, uint32_t>, uint32_t> BranchIdOfBlock;
  std::set<std::pair<uint32_t, uint32_t>> TrampolineBlocks;

  std::set<std::pair<uint32_t, uint32_t>> MarkerNeeded;
  std::vector<BlockRef> MarkerBlockRefs;  // marker id -> real block
  std::vector<BlockRef> MarkerResumeRefs; // marker id -> shadow block

  uint32_t NumNormalGuards = 0;
  uint32_t NumSpecGuards = 0;

  void createTrampolines();
  void findMarkerBlocks();
  void instrumentRealBlock(uint32_t F, uint32_t B);
  void instrumentShadowBlock(uint32_t F, uint32_t B);
  void instrumentBaselineBlock(uint32_t F, uint32_t B);
};

} // namespace

void Rewriter::createTrampolines() {
  for (uint32_t F = 0; F != NumReal; ++F) {
    Function &Fn = M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      BasicBlock &Blk = Fn.Blocks[B];
      const Inst *Term = Blk.terminator();
      if (!Term || Term->I.Op != Opcode::JCC)
        continue;
      assert(Blk.TakenSucc && Blk.FallSucc && "JCC without successors");

      auto BranchId = static_cast<uint32_t>(TrampolineRefs.size());
      BranchIdOfBlock[{F, B}] = BranchId;

      BlockRef WrongTaken, WrongFall;
      uint32_t HostFunc;
      if (Shadows()) {
        HostFunc = Fn.ShadowIdx;
        WrongTaken = shadowBlock(M, *Blk.FallSucc);
        WrongFall = shadowBlock(M, *Blk.TakenSucc);
      } else {
        HostFunc = F;
        WrongTaken = *Blk.FallSucc;
        WrongFall = *Blk.TakenSucc;
      }
      BlockRef TrampRef = M.addBlock(HostFunc);
      BasicBlock &Tramp = M.block(TrampRef);
      Inst CondJump(Instruction::jcc(Term->I.CC, 0));
      CondJump.Target = WrongTaken;
      Inst Fallback(Instruction::jmp(0));
      Fallback.Target = WrongFall;
      Tramp.Insts.push_back(std::move(CondJump));
      Tramp.Insts.push_back(std::move(Fallback));
      TrampolineRefs.push_back(TrampRef);
      TrampolineBlocks.insert({TrampRef.Func, TrampRef.Block});
    }
  }
}

void Rewriter::findMarkerBlocks() {
  for (uint32_t F = 0; F != NumReal; ++F) {
    Function &Fn = M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      const BasicBlock &Blk = Fn.Blocks[B];
      const Inst *Term = Blk.terminator();
      if (Term && Term->I.info().IsCall && Blk.FallSucc)
        MarkerNeeded.insert({Blk.FallSucc->Func, Blk.FallSucc->Block});
      for (const BlockRef &R : Blk.IndirectSuccs)
        MarkerNeeded.insert({R.Func, R.Block});
    }
  }
}

void Rewriter::instrumentRealBlock(uint32_t F, uint32_t B) {
  BasicBlock &Blk = M.Funcs[F].Blocks[B];

  uint32_t TagProgIdx = NoIdx;
  bool SyncDift = false;
  if (Opts.EnableDift) {
    BlockTagPlan Plan = buildBlockTagProgram(Blk);
    if (Plan.NeedsSync) {
      SyncDift = true;
    } else if (!Plan.Program.empty()) {
      TagProgIdx = static_cast<uint32_t>(M.TagPrograms.size());
      M.TagPrograms.push_back(std::move(Plan.Program));
    }
  }
  auto HasTagEffect = [](const isa::Instruction &I) {
    switch (I.Op) {
    case Opcode::MOV:
    case Opcode::LOAD:
    case Opcode::LOADS:
    case Opcode::STORE:
    case Opcode::LEA:
    case Opcode::PUSH:
    case Opcode::POP:
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::MUL:
    case Opcode::UDIV:
    case Opcode::UREM:
    case Opcode::NEG:
    case Opcode::CMP:
    case Opcode::TEST:
    case Opcode::SET:
    case Opcode::CMOV:
    case Opcode::CALL:
    case Opcode::CALLI:
    case Opcode::EXT:
      return true;
    default:
      return false;
    }
  };

  std::vector<Inst> Out;
  Out.reserve(Blk.Insts.size() + 6);

  if (MarkerNeeded.count({F, B})) {
    auto MarkerId = static_cast<uint32_t>(MarkerBlockRefs.size());
    MarkerBlockRefs.push_back({F, B});
    MarkerResumeRefs.push_back(shadowBlock(M, {F, B}));
    Out.emplace_back(Instruction::markerNop());
    Out.emplace_back(
        Instruction::intrinsic(IntrinsicID::MarkerCheck, MarkerId));
  }
  if (B == 0)
    Out.emplace_back(Instruction::intrinsic(IntrinsicID::RAPoison));

  auto BranchIt = BranchIdOfBlock.find({F, B});
  for (size_t Idx = 0; Idx != Blk.Insts.size(); ++Idx) {
    Inst &In = Blk.Insts[Idx];
    bool IsLast = Idx + 1 == Blk.Insts.size();
    if (IsLast && TagProgIdx != NoIdx &&
        (In.I.isTerminator() || In.I.info().IsCall)) {
      Out.emplace_back(
          Instruction::intrinsic(IntrinsicID::TagBlock, TagProgIdx));
      TagProgIdx = NoIdx;
    }
    if (SyncDift && HasTagEffect(In.I))
      Out.emplace_back(Instruction::intrinsic(IntrinsicID::TagProp));
    if (In.I.Op == Opcode::RET)
      Out.emplace_back(Instruction::intrinsic(IntrinsicID::RAUnpoison));
    if (IsLast && In.I.Op == Opcode::JCC &&
        BranchIt != BranchIdOfBlock.end()) {
      if (Opts.EnableCoverage)
        Out.emplace_back(Instruction::intrinsic(IntrinsicID::CovGuard,
                                                NumNormalGuards++));
      Out.emplace_back(Instruction::intrinsic(IntrinsicID::StartSim,
                                              BranchIt->second));
    }
    Out.push_back(std::move(In));
  }
  if (TagProgIdx != NoIdx) // fallthrough block without terminator
    Out.emplace_back(
        Instruction::intrinsic(IntrinsicID::TagBlock, TagProgIdx));
  Blk.Insts = std::move(Out);
}

void Rewriter::instrumentShadowBlock(uint32_t F, uint32_t B) {
  if (TrampolineBlocks.count({F, B}))
    return; // trampolines are glue, not program code
  Function &Fn = M.Funcs[F];
  BasicBlock &Blk = Fn.Blocks[B];
  std::vector<Inst> Out;
  Out.reserve(Blk.Insts.size() * 3);

  auto Emit = [&](Instruction I) { Out.emplace_back(std::move(I)); };

  if (Opts.EnableCoverage)
    Emit(Instruction::intrinsic(IntrinsicID::CovSpecGuard, NumSpecGuards++));
  if (B == 0)
    Emit(Instruction::intrinsic(IntrinsicID::RAPoison));

  unsigned SinceRestore = 0;
  auto FlushRestore = [&] {
    if (SinceRestore == 0)
      return;
    Emit(Instruction::intrinsic(IntrinsicID::RestoreCond, SinceRestore));
    SinceRestore = 0;
  };
  auto TagProp = [&] {
    if (Opts.EnableDift)
      Emit(Instruction::intrinsic(IntrinsicID::TagProp));
  };
  auto MemCheck = [&](const Inst &In, const MemRef &Mem, bool IsWrite) {
    if (isAllowlistedAccess(Mem))
      return;
    int64_t Payload = sitePayload(In.OrigAddr, In.I.Size, IsWrite);
    Emit(Instruction::intrinsicMem(Opts.EnableDift ? IntrinsicID::TaintSink
                                                   : IntrinsicID::AsanCheck,
                                   Mem, Payload));
  };
  MemRef StackSlot{SP, NoReg, 1, -8};

  auto BranchIt =
      Fn.ShadowOf != NoIdx
          ? BranchIdOfBlock.find({Fn.ShadowOf, B})
          : BranchIdOfBlock.end();

  for (size_t Idx = 0; Idx != Blk.Insts.size(); ++Idx) {
    Inst &In = Blk.Insts[Idx];
    bool IsLast = Idx + 1 == Blk.Insts.size();
    switch (In.I.Op) {
    case Opcode::LOAD:
    case Opcode::LOADS:
      MemCheck(In, In.I.B.M, /*IsWrite=*/false);
      TagProp();
      break;
    case Opcode::STORE:
      MemCheck(In, In.I.A.M, /*IsWrite=*/true);
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, In.I.A.M,
                                     In.I.Size));
      TagProp();
      break;
    case Opcode::PUSH:
    case Opcode::CALL:
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, StackSlot, 8));
      TagProp();
      break;
    case Opcode::CALLI:
      Emit(Instruction::intrinsicReg(IntrinsicID::EscapeCheckTgt, In.I.A.R));
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, StackSlot, 8));
      TagProp();
      break;
    case Opcode::JMPI:
      FlushRestore();
      Emit(Instruction::intrinsicReg(IntrinsicID::EscapeCheckTgt, In.I.A.R));
      break;
    case Opcode::RET:
      FlushRestore();
      Emit(Instruction::intrinsic(IntrinsicID::RAUnpoison));
      Emit(Instruction::intrinsic(IntrinsicID::EscapeCheckRet));
      break;
    case Opcode::EXT:
    case Opcode::HALT:
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::ExternalCall)));
      break;
    case Opcode::FENCE:
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::Serializing)));
      break;
    case Opcode::JCC:
      if (IsLast && BranchIt != BranchIdOfBlock.end()) {
        FlushRestore();
        if (Opts.EnableDift)
          Emit(Instruction::intrinsic(
              IntrinsicID::TaintBranch,
              sitePayload(In.OrigAddr, 0, false)));
        Emit(Instruction::intrinsic(IntrinsicID::StartSimNested,
                                    BranchIt->second));
      }
      break;
    case Opcode::MOV:
    case Opcode::LEA:
    case Opcode::POP:
    case Opcode::ADD:
    case Opcode::SUB:
    case Opcode::AND:
    case Opcode::OR:
    case Opcode::XOR:
    case Opcode::SHL:
    case Opcode::SHR:
    case Opcode::SAR:
    case Opcode::MUL:
    case Opcode::UDIV:
    case Opcode::UREM:
    case Opcode::NEG:
    case Opcode::CMP:
    case Opcode::TEST:
    case Opcode::SET:
    case Opcode::CMOV:
      TagProp();
      break;
    default:
      break;
    }
    if (IsLast && (In.I.isTerminator() || In.I.info().IsCall))
      FlushRestore();
    Out.push_back(std::move(In));
    ++SinceRestore;
    if (SinceRestore >= Opts.RestoreInterval)
      FlushRestore();
  }
  FlushRestore();
  Blk.Insts = std::move(Out);
}

void Rewriter::instrumentBaselineBlock(uint32_t F, uint32_t B) {
  if (TrampolineBlocks.count({F, B}))
    return;
  BasicBlock &Blk = M.Funcs[F].Blocks[B];
  std::vector<Inst> Out;
  Out.reserve(Blk.Insts.size() * 3);
  auto Emit = [&](Instruction I) { Out.emplace_back(std::move(I)); };

  if (Opts.EnableCoverage)
    Emit(Instruction::intrinsic(IntrinsicID::CovSpecGuard, NumSpecGuards++));
  if (B == 0)
    Emit(Instruction::intrinsic(IntrinsicID::RAPoison));

  unsigned SinceRestore = 0;
  auto FlushRestore = [&] {
    if (SinceRestore == 0)
      return;
    Emit(Instruction::intrinsic(IntrinsicID::RestoreCond, SinceRestore));
    SinceRestore = 0;
  };
  MemRef StackSlot{SP, NoReg, 1, -8};
  auto BranchIt = BranchIdOfBlock.find({F, B});

  for (size_t Idx = 0; Idx != Blk.Insts.size(); ++Idx) {
    Inst &In = Blk.Insts[Idx];
    bool IsLast = Idx + 1 == Blk.Insts.size();
    switch (In.I.Op) {
    case Opcode::LOAD:
    case Opcode::LOADS:
      if (!isAllowlistedAccess(In.I.B.M))
        Emit(Instruction::intrinsicMem(
            IntrinsicID::AsanCheck, In.I.B.M,
            sitePayload(In.OrigAddr, In.I.Size, false)));
      break;
    case Opcode::STORE:
      if (!isAllowlistedAccess(In.I.A.M))
        Emit(Instruction::intrinsicMem(
            IntrinsicID::AsanCheck, In.I.A.M,
            sitePayload(In.OrigAddr, In.I.Size, true)));
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, In.I.A.M,
                                     In.I.Size));
      break;
    case Opcode::PUSH:
    case Opcode::CALL:
    case Opcode::CALLI:
      Emit(Instruction::intrinsicMem(IntrinsicID::MemLog, StackSlot, 8));
      break;
    case Opcode::RET:
      FlushRestore();
      Emit(Instruction::intrinsic(IntrinsicID::RAUnpoison));
      break;
    case Opcode::EXT:
    case Opcode::HALT:
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::ExternalCall)));
      break;
    case Opcode::FENCE:
      Emit(Instruction::intrinsic(
          IntrinsicID::RestoreUncond,
          static_cast<int64_t>(RollbackReason::Serializing)));
      break;
    case Opcode::JCC:
      if (IsLast && BranchIt != BranchIdOfBlock.end()) {
        FlushRestore();
        if (Opts.EnableCoverage)
          Emit(Instruction::intrinsic(IntrinsicID::CovGuard,
                                      NumNormalGuards++));
        Emit(Instruction::intrinsic(IntrinsicID::StartSim,
                                    BranchIt->second));
      }
      break;
    default:
      break;
    }
    if (IsLast && (In.I.isTerminator() || In.I.info().IsCall))
      FlushRestore();
    Out.push_back(std::move(In));
    ++SinceRestore;
    if (SinceRestore >= Opts.RestoreInterval)
      FlushRestore();
  }
  FlushRestore();
  Blk.Insts = std::move(Out);
}

Expected<LegacyRewriteResult> Rewriter::run() {
  NumReal = static_cast<uint32_t>(M.Funcs.size());
  if (NumReal == 0)
    return makeError("module has no functions to rewrite");

  if (Shadows())
    cloneShadowFunctions(M);
  createTrampolines();
  if (Shadows())
    findMarkerBlocks();

  for (uint32_t F = 0; F != NumReal; ++F) {
    Function &Fn = M.Funcs[F];
    for (uint32_t B = 0; B != Fn.Blocks.size(); ++B) {
      if (TrampolineBlocks.count({F, B}))
        continue;
      if (Shadows())
        instrumentRealBlock(F, B);
      else
        instrumentBaselineBlock(F, B);
    }
  }
  if (Shadows()) {
    for (uint32_t F = NumReal; F != M.Funcs.size(); ++F)
      for (uint32_t B = 0; B != M.Funcs[F].Blocks.size(); ++B)
        instrumentShadowBlock(F, B);
  }

  LegacyRewriteResult Res;
  auto LayoutOrErr = layOut(M, Res.Binary);
  if (!LayoutOrErr)
    return LayoutOrErr.takeError();
  const LayoutResult &L = *LayoutOrErr;

  runtime::MetaTable &Meta = Res.Meta;
  Meta.RealTextStart = L.TextStart;
  Meta.RealTextEnd = L.ShadowStart;
  Meta.ShadowTextStart = L.ShadowStart;
  Meta.ShadowTextEnd = L.TextEnd;
  Meta.SimFlagAddr = obj::SimFlagAddr;
  for (const BlockRef &R : TrampolineRefs)
    Meta.Trampolines.push_back(L.blockAddr(R));
  if (Shadows())
    for (uint32_t F = 0; F != NumReal; ++F)
      Meta.FuncMap[L.FuncStart[F]] = L.FuncStart[M.Funcs[F].ShadowIdx];
  for (size_t I = 0; I != MarkerBlockRefs.size(); ++I) {
    Meta.MarkerSites.insert(L.blockAddr(MarkerBlockRefs[I]));
    Meta.MarkerResume.push_back(L.blockAddr(MarkerResumeRefs[I]));
  }
  Meta.TagPrograms = M.TagPrograms;
  Meta.NumNormalGuards = NumNormalGuards;
  Meta.NumSpecGuards = NumSpecGuards;

  Res.Binary.Metadata[runtime::MetaSectionName] = Meta.serialize();
  return Res;
}

Expected<LegacyRewriteResult>
legacyref::legacyRewriteModule(Module M, const RewriterOptions &Opts) {
  Rewriter R(M, Opts);
  return R.run();
}

Expected<LegacyRewriteResult>
legacyref::legacyRewriteBinary(const obj::ObjectFile &In,
                               const RewriterOptions &Opts) {
  auto ModOrErr = disasm::disassemble(In);
  if (!ModOrErr)
    return ModOrErr.takeError();
  return legacyRewriteModule(std::move(*ModOrErr), Opts);
}
