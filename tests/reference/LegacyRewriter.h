//===- tests/reference/LegacyRewriter.h - Pre-refactor rewriter --*- C++ -*-===//
///
/// \file
/// The monolithic pre-refactor Teapot rewriter, preserved verbatim as a
/// *test-only* reference implementation: passes_test.cpp asserts that
/// the pass-pipeline rewriter produces byte-identical binaries and
/// metadata. Not part of the product library — never include this
/// outside tests/.
///
//===----------------------------------------------------------------------===//

#ifndef TEAPOT_TESTS_REFERENCE_LEGACYREWRITER_H
#define TEAPOT_TESTS_REFERENCE_LEGACYREWRITER_H

#include "core/TeapotRewriter.h"

namespace teapot {
namespace legacyref {

struct LegacyRewriteResult {
  obj::ObjectFile Binary;
  runtime::MetaTable Meta;
};

/// The pre-refactor core::rewriteModule, byte-for-byte.
Expected<LegacyRewriteResult>
legacyRewriteModule(ir::Module M, const core::RewriterOptions &Opts);

/// The pre-refactor core::rewriteBinary, byte-for-byte.
Expected<LegacyRewriteResult>
legacyRewriteBinary(const obj::ObjectFile &In,
                    const core::RewriterOptions &Opts);

} // namespace legacyref
} // namespace teapot

#endif // TEAPOT_TESTS_REFERENCE_LEGACYREWRITER_H
