//===- tests/vm_test.cpp - Machine interpreter tests ------------------------===//

#include "TestUtil.h"
#include "obj/Layout.h"
#include "vm/Memory.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::vm;

TEST(Memory, ZeroFillAndRoundtrip) {
  Memory M;
  EXPECT_EQ(M.readU8(0x5000), 0);
  M.writeU8(0x5000, 42);
  EXPECT_EQ(M.readU8(0x5000), 42);
  // Cross-page write.
  uint64_t Addr = 0x6000 - 3;
  M.writeUnsigned(Addr, 0x0102030405060708ULL, 8);
  EXPECT_EQ(M.readUnsigned(Addr, 8), 0x0102030405060708ULL);
}

TEST(Memory, BaselineReset) {
  Memory M;
  M.writeU8(0x1000, 1);
  M.captureBaseline();
  M.writeU8(0x1000, 9);
  M.writeU8(0x2000, 5); // page not in baseline
  M.resetToBaseline();
  EXPECT_EQ(M.readU8(0x1000), 1);
  EXPECT_EQ(M.readU8(0x2000), 0);
  EXPECT_EQ(M.dirtyPageCount(), 0u);
}

TEST(Memory, DirtyPageRestoreIsExact) {
  Memory M;
  // Three baseline pages with distinct patterns, plus a cross-page value.
  for (uint64_t Page = 0; Page != 3; ++Page)
    for (uint64_t Off = 0; Off != Memory::PageSize; Off += 64)
      M.writeU8(0x10000 + Page * Memory::PageSize + Off,
                static_cast<uint8_t>(1 + Page + Off / 64));
  M.writeUnsigned(0x11000 - 4, 0xa1b2c3d4e5f60708ULL, 8);
  M.captureBaseline();

  std::vector<uint8_t> Before(3 * Memory::PageSize);
  M.read(0x10000, Before.data(), Before.size());

  // Scribble over two baseline pages and two fresh ones (the write at
  // 0x12ffc straddles the 0x13000 page boundary into unmapped space).
  for (uint64_t Off = 0; Off != Memory::PageSize; ++Off)
    M.writeU8(0x10000 + Off, 0xee);
  M.writeUnsigned(0x12ffc, 0xffffffffffffffffULL, 8);
  M.writeU8(0x40000, 7);
  size_t Restored = M.resetToBaseline();
  EXPECT_EQ(Restored, 4u); // pages 0x10, 0x12, 0x13, 0x40

  std::vector<uint8_t> After(3 * Memory::PageSize);
  M.read(0x10000, After.data(), After.size());
  EXPECT_EQ(Before, After);
  EXPECT_EQ(M.readU8(0x40000), 0);
  EXPECT_EQ(M.dirtyPageCount(), 0u);
}

TEST(Memory, UntouchedPagesAreNotRestored) {
  Memory M;
  M.writeU8(0x1000, 1);
  M.writeU8(0x2000, 2);
  M.captureBaseline();
  M.writeU8(0x1000, 9); // only one page dirtied
  EXPECT_EQ(M.dirtyPageCount(), 1u);
  EXPECT_EQ(M.resetToBaseline(), 1u); // O(dirty), not O(mapped)
  EXPECT_EQ(M.resetToBaseline(), 0u); // idempotent: nothing left to do
  EXPECT_EQ(M.readU8(0x1000), 1);
  EXPECT_EQ(M.readU8(0x2000), 2);
}

TEST(Memory, ZeroPagesReclaimedAtCapture) {
  Memory M;
  // A page holding only zeros is indistinguishable from an unmapped one.
  M.writeUnsigned(0x8000, 0, 8);
  M.writeU8(0x9000, 3);
  EXPECT_EQ(M.mappedPageCount(), 2u);
  M.captureBaseline();
  EXPECT_EQ(M.mappedPageCount(), 1u)   << "zero page should be unmapped";
  EXPECT_EQ(M.baselinePageCount(), 1u) << "zero page should not be copied";
  EXPECT_EQ(M.readU8(0x8000), 0);
  // Writing it again materializes a fresh page; reset unmaps it again.
  M.writeU8(0x8000, 0x55);
  M.resetToBaseline();
  EXPECT_EQ(M.readU8(0x8000), 0);
  EXPECT_EQ(M.mappedPageCount(), 1u);
  EXPECT_EQ(M.readU8(0x9000), 3);
}

TEST(Memory, RecaptureRebasesTheSnapshot) {
  Memory M;
  M.writeU8(0x1000, 1);
  M.captureBaseline();
  M.writeU8(0x1000, 2);
  M.captureBaseline(); // new baseline: 2 is now the reset target
  M.writeU8(0x1000, 3);
  M.resetToBaseline();
  EXPECT_EQ(M.readU8(0x1000), 2);
}

// The guest page at index 0x10 and the shadow page at index 0x200000010
// map to the same direct-mapped slot (0x10 mod 256) but live in
// different banks: LowMem is guest, the DIFT LowTag region is not.
static constexpr uint64_t SplitGuestAddr = 0x10000;
static constexpr uint64_t SplitShadowAddr = 0x2000'0001'0000ULL;

TEST(Memory, SplitTlbBanksDoNotEvictEachOther) {
  Memory M;
  M.writeU8(SplitGuestAddr, 1);
  M.writeU8(SplitShadowAddr, 2);
  (void)M.readU8(SplitGuestAddr); // warm both banks
  (void)M.readU8(SplitShadowAddr);
  M.resetHotPathCounters();
  for (int I = 0; I != 64; ++I) {
    EXPECT_EQ(M.readU8(SplitGuestAddr), 1);
    EXPECT_EQ(M.readU8(SplitShadowAddr), 2);
  }
  // Interleaved same-slot traffic stays hot in both banks — the exact
  // pattern an instrumented guest access produces (data access, then
  // its tag-shadow access) and the reason the TLB is split.
  EXPECT_EQ(M.tlbGuestHits(), 64u);
  EXPECT_EQ(M.tlbRuntimeHits(), 64u);
  EXPECT_EQ(M.tlbSlowPathCalls(), 0u);

  // Contrast: two *guest* pages in the same slot do conflict (the banks
  // are direct-mapped); every alternating access is a fill.
  const uint64_t OtherGuest = SplitGuestAddr + 256 * Memory::PageSize;
  M.writeU8(OtherGuest, 3);
  M.resetHotPathCounters();
  for (int I = 0; I != 8; ++I) {
    EXPECT_EQ(M.readU8(SplitGuestAddr), 1);
    EXPECT_EQ(M.readU8(OtherGuest), 3);
  }
  EXPECT_EQ(M.tlbSlowPathCalls(), 16u);
  EXPECT_EQ(M.tlbGuestHits(), 0u);
}

TEST(Memory, TlbInvalidationCoversBothBanks) {
  Memory M;
  M.writeU8(SplitGuestAddr, 1);
  M.writeU8(SplitShadowAddr, 2);
  (void)M.readU8(SplitGuestAddr);
  (void)M.readU8(SplitShadowAddr);
  // captureBaseline can unmap (reclaim) pages, so it must flush both
  // banks: the next access in each is a fill, not a stale hit.
  M.captureBaseline();
  M.resetHotPathCounters();
  EXPECT_EQ(M.readU8(SplitGuestAddr), 1);
  EXPECT_EQ(M.readU8(SplitShadowAddr), 2);
  EXPECT_EQ(M.tlbSlowPathCalls(), 2u);
  EXPECT_EQ(M.tlbGuestHits(), 0u);
  EXPECT_EQ(M.tlbRuntimeHits(), 0u);

  // resetToBaseline un-maps post-capture pages: flushed again, in both
  // banks, and the restored contents are what reads see.
  M.writeU8(SplitGuestAddr, 9);
  M.writeU8(SplitShadowAddr, 9);
  M.resetToBaseline();
  M.resetHotPathCounters();
  EXPECT_EQ(M.readU8(SplitGuestAddr), 1);
  EXPECT_EQ(M.readU8(SplitShadowAddr), 2);
  EXPECT_EQ(M.tlbSlowPathCalls(), 2u);
}

TEST(Memory, WatchEpochSeesWritesInEitherBank) {
  Memory M;
  M.watchRange(SplitGuestAddr, Memory::PageSize);
  uint64_t E0 = M.watchEpoch();
  M.writeU8(SplitGuestAddr, 1);
  EXPECT_GT(M.watchEpoch(), E0);
  // The epoch check runs before the bank split, so a watched
  // runtime-bank page invalidates just the same.
  M.watchRange(SplitShadowAddr, Memory::PageSize);
  uint64_t E1 = M.watchEpoch();
  M.writeU8(SplitShadowAddr, 1);
  EXPECT_GT(M.watchEpoch(), E1);
  uint64_t E2 = M.watchEpoch();
  M.writeU8(0x5000, 1); // unwatched: epoch untouched
  EXPECT_EQ(M.watchEpoch(), E2);
}

TEST(Memory, ReadCodeIsExemptFromAccounting) {
  Memory M;
  M.writeU8(0x3000, 0x7f);
  M.resetHotPathCounters();
  uint8_t Buf[8] = {};
  M.readCode(0x3000, Buf, sizeof(Buf));
  EXPECT_EQ(Buf[0], 0x7f); // same bytes as read()
  EXPECT_EQ(M.tlbGuestHits(), 0u);
  EXPECT_EQ(M.tlbSlowPathCalls(), 0u);
  M.read(0x3000, Buf, sizeof(Buf));
  EXPECT_EQ(M.tlbGuestHits() + M.tlbSlowPathCalls(), 1u);
}

TEST(Memory, SpanAccessorsMatchByteSemantics) {
  Memory M;
  EXPECT_EQ(M.spanForRead(0x7000, 16), nullptr); // unmapped: zeros
  M.captureBaseline();
  uint8_t *W = M.spanForWrite(0x7000, 16);
  ASSERT_NE(W, nullptr);
  memset(W, 0xab, 16);
  EXPECT_EQ(M.readU8(0x7007), 0xab);
  EXPECT_EQ(M.dirtyPageCount(), 1u); // span writes keep the dirty bit
  const uint8_t *R = M.spanForRead(0x7008, 8);
  ASSERT_NE(R, nullptr);
  EXPECT_EQ(R[0], 0xab);
}

TEST(Machine, ArithmeticAndHaltStatus) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r0, 6
    mov r1, 7
    mul r0, r1
    sub r0, 2
    halt
)"));
  EXPECT_EQ(R.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(R.Stop.ExitStatus, 40u);
}

TEST(Machine, SignedAndUnsignedBranches) {
  // -1 < 1 signed, but above unsigned.
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r0, -1
    cmp r0, 1
    j.lt signed_ok
    halt
signed_ok:
    cmp r0, 1
    j.a unsigned_ok
    halt
unsigned_ok:
    mov r0, 77
    halt
)"));
  EXPECT_EQ(R.Stop.ExitStatus, 77u);
}

TEST(Machine, LoadStoreSizesAndSignExtension) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    st1 [buf], 0xff
    ld1 r0, [buf]        ; zero-extended: 255
    lds1 r1, [buf]       ; sign-extended: -1
    add r0, r1           ; 255 + (-1) = 254
    st4 [buf], 0x80000000
    lds4 r2, [buf]
    cmp r2, 0
    j.lt neg
    halt
neg:
    halt
.bss
buf:
    .space 8
)"));
  EXPECT_EQ(R.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(R.Stop.ExitStatus, 254u);
}

TEST(Machine, CallRetAndStack) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r0, 5
    call double_it
    call double_it
    halt
double_it:
    add r0, r0
    ret
)"));
  EXPECT_EQ(R.Stop.ExitStatus, 20u);
}

TEST(Machine, IndirectCallAndJump) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r1, target_fn
    calli r1
    mov r2, done
    jmpi r2
    halt               ; skipped
done:
    halt
target_fn:
    mov r0, 9
    ret
)"));
  EXPECT_EQ(R.Stop.ExitStatus, 9u);
}

TEST(Machine, ReturnFromEntryHitsSentinel) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r0, 3
    ret
)"));
  EXPECT_EQ(R.Stop.Kind, StopKind::Halted);
  EXPECT_EQ(R.Stop.ExitStatus, 3u);
}

TEST(Machine, InputOutputExternals) {
  auto Bin = assembleOrDie(R"(
.text
main:
    ext 2              ; input_size
    mov r8, r0
    mov r0, buf
    mov r1, 16
    ext 1              ; read_input
    mov r9, r0         ; bytes read
    mov r0, buf
    mov r1, r9
    ext 3              ; write_out (echo)
    mov r0, r9
    halt
.bss
buf:
    .space 16
)");
  vm::Machine M;
  cantFail(M.loadObject(Bin));
  std::vector<uint8_t> In = {'a', 'b', 'c'};
  M.setInput(In);
  StopState S = M.run(1000);
  EXPECT_EQ(S.ExitStatus, 3u);
  EXPECT_EQ(M.output(), In);
}

TEST(Machine, MallocFreeDefaultAllocator) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r0, 64
    ext 4              ; malloc
    mov r8, r0
    st8 [r8], 42
    mov r0, 64
    ext 4
    cmp r0, r8         ; second allocation is distinct
    j.eq bad
    ld8 r0, [r8]
    halt
bad:
    mov r0, 0
    halt
)"));
  EXPECT_EQ(R.Stop.ExitStatus, 42u);
}

TEST(Machine, WildAccessFaults) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r1, 0x300000000000   ; inside the shadow gap: not user-accessible
    ld8 r0, [r1]
    halt
)"));
  EXPECT_EQ(R.Stop.Kind, StopKind::Fault);
  EXPECT_EQ(R.Stop.Fault, FaultKind::BadMemory);
}

TEST(Machine, DivByZeroFaults) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    mov r0, 5
    mov r1, 0
    udiv r0, r1
    halt
)"));
  EXPECT_EQ(R.Stop.Kind, StopKind::Fault);
  EXPECT_EQ(R.Stop.Fault, FaultKind::DivByZero);
}

TEST(Machine, FaultHookCanResume) {
  auto Bin = assembleOrDie(R"(
.text
main:
    mov r1, 0x300000000000
    ld8 r0, [r1]
    halt                ; skipped by the hook redirect
recover:
    mov r0, 55
    halt
)");
  vm::Machine M;
  cantFail(M.loadObject(Bin));
  const obj::Symbol *Rec = Bin.findSymbol("recover");
  ASSERT_NE(Rec, nullptr);
  M.FaultHook = [&](vm::Machine &Mach, FaultKind, uint64_t) {
    Mach.C.PC = Rec->Addr;
    return true;
  };
  StopState S = M.run(1000);
  EXPECT_EQ(S.ExitStatus, 55u);
}

TEST(Machine, OutOfGas) {
  auto R = runNative(assembleOrDie(R"(
.text
main:
    jmp main
)"),
                     {}, 1000);
  EXPECT_EQ(R.Stop.Kind, StopKind::OutOfGas);
}

TEST(Machine, ResetToBaselineRestoresEverything) {
  auto Bin = assembleOrDie(R"(
.text
main:
    ld8 r0, [counter]
    add r0, 1
    st8 [counter], r0
    halt
.data
counter:
    .quad 100
)");
  vm::Machine M;
  cantFail(M.loadObject(Bin));
  M.captureBaseline();
  EXPECT_EQ(M.run(1000).ExitStatus, 101u);
  M.resetToBaseline();
  // Same result again: the data write was rolled back.
  EXPECT_EQ(M.run(1000).ExitStatus, 101u);
}

TEST(Machine, IntrinsicDispatch) {
  // Hand-craft a binary containing an INTR (assembler can't emit them).
  using namespace teapot::isa;
  std::vector<uint8_t> Text;
  encode(Instruction::intrinsic(IntrinsicID::CovGuard, 5), Text);
  encode(Instruction::halt(), Text);
  obj::ObjectFile Bin;
  Bin.Entry = obj::TextBase;
  Bin.Sections.push_back({".text", obj::SectionKind::Code, obj::TextBase,
                          Text, 0});

  struct Counter : vm::IntrinsicHandler {
    int Hits = 0;
    int64_t Payload = 0;
    bool onIntrinsic(vm::Machine &, const Instruction &I) override {
      ++Hits;
      Payload = I.IntrPayload;
      return true;
    }
  } H;
  vm::Machine M;
  cantFail(M.loadObject(Bin));
  M.Intrinsics = &H;
  M.run(100);
  EXPECT_EQ(H.Hits, 1);
  EXPECT_EQ(H.Payload, 5);
  EXPECT_EQ(M.executedIntrinsics(), 1u);
}
