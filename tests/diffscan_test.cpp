//===- tests/diffscan_test.cpp - Cross-engine/cross-preset diff scanning ----===//
//
// The library-level contract behind tools/teapot_diffscan: on generated
// programs and the scenario-diversity workloads, a full Scanner campaign
// is engine-invariant — interp, block, and jit produce identical
// ScanResults (gadgets, coverage, corpus, executions) once the two
// legitimately run-varying fields (engine name, wall clock) are
// normalized — while detector presets legitimately disagree, and that
// disagreement is exactly what diffScans reports. Plus the proggen:
// pseudo-workload plumbing through Scanner::loadWorkload.
//
//===----------------------------------------------------------------------===//

#include "api/ScanDiff.h"
#include "api/Scanner.h"
#include "lang/ProgGen.h"

#include <gtest/gtest.h>

using namespace teapot;

namespace {

constexpr vm::Machine::Engine AllEngines[] = {
    vm::Machine::Engine::Interpreter, vm::Machine::Engine::Block,
    vm::Machine::Engine::Jit};

ScanConfig smallConfig(const std::string &Preset, vm::Machine::Engine Eng,
                       uint64_t Iters = 120) {
  auto CfgOrErr = ScanConfig::preset(Preset);
  EXPECT_TRUE(static_cast<bool>(CfgOrErr)) << Preset;
  ScanConfig Cfg = std::move(*CfgOrErr);
  Cfg.Campaign.Seed = 1;
  Cfg.Campaign.TotalIterations = Iters;
  Cfg.Campaign.Workers = 1;
  Cfg.Campaign.SyncInterval = 64;
  Cfg.Campaign.MaxInputLen = 256;
  Cfg.Engine = Eng;
  return Cfg;
}

/// Runs one full campaign and normalizes the run-varying fields the way
/// teapot_diffscan does.
ScanResult scanNormalized(const std::string &Workload, ScanConfig Cfg) {
  Scanner S(std::move(Cfg));
  Error E = S.loadWorkload(Workload);
  EXPECT_FALSE(static_cast<bool>(E)) << Workload;
  E = S.rewrite();
  EXPECT_FALSE(static_cast<bool>(E)) << Workload;
  auto ROrErr = S.run();
  EXPECT_TRUE(static_cast<bool>(ROrErr)) << Workload;
  ScanResult R = std::move(*ROrErr);
  R.normalizeRunVarying();
  return R;
}

// Engines are bit-identical at the full-scan level on generated
// programs, across every preset — the tentpole claim.
TEST(DiffScan, GeneratedProgramsEngineInvariant) {
  for (uint64_t Seed : {11ull, 12ull}) {
    std::string Name = "proggen:" + std::to_string(Seed) + ":4";
    for (const char *Preset :
         {"teapot", "teapot-nodift", "specfuzz-baseline"}) {
      ScanResult Ref = scanNormalized(
          Name, smallConfig(Preset, vm::Machine::Engine::Interpreter));
      for (vm::Machine::Engine Eng :
           {vm::Machine::Engine::Block, vm::Machine::Engine::Jit}) {
        ScanResult R = scanNormalized(Name, smallConfig(Preset, Eng));
        EXPECT_TRUE(R == Ref)
            << Name << "/" << Preset << "/" << vm::engineName(Eng);
        // The JSON artifacts are byte-identical too (what --out-dir
        // writes and CI cmp's).
        EXPECT_EQ(R.toJsonString(), Ref.toJsonString())
            << Name << "/" << Preset;
      }
    }
  }
}

// Same invariance on the scenario-diversity workloads.
TEST(DiffScan, NewWorkloadsEngineInvariant) {
  for (const char *W : {"base64", "varint"}) {
    ScanResult Ref = scanNormalized(
        W, smallConfig("teapot", vm::Machine::Engine::Interpreter));
    for (vm::Machine::Engine Eng :
         {vm::Machine::Engine::Block, vm::Machine::Engine::Jit})
      EXPECT_TRUE(scanNormalized(W, smallConfig("teapot", Eng)) == Ref)
          << W << "/" << vm::engineName(Eng);
  }
}

// Repeating the same scan is byte-identical (the determinism the whole
// diffing story rests on).
TEST(DiffScan, ScanRunTwiceIdentical) {
  std::string Name = "proggen:11:4";
  ScanResult A = scanNormalized(
      Name, smallConfig("teapot", vm::Machine::Engine::Jit));
  ScanResult B = scanNormalized(
      Name, smallConfig("teapot", vm::Machine::Engine::Jit));
  EXPECT_EQ(A.toJsonString(), B.toJsonString());
}

// Preset deltas: diffScans between presets is well-formed, and its
// new/lost counts are exactly the gadget-set difference. Presets may
// legitimately disagree; engine choice must not affect the delta.
TEST(DiffScan, PresetDeltasRecorded) {
  std::string Name = "proggen:3:4";
  ScanResult Teapot = scanNormalized(
      Name, smallConfig("teapot", vm::Machine::Engine::Jit, 100));
  ScanResult NoDift = scanNormalized(
      Name, smallConfig("teapot-nodift", vm::Machine::Engine::Jit, 100));

  ScanDiff D = diffScans(Teapot, NoDift, {});
  EXPECT_EQ(Teapot.Gadgets.size() + D.NewGadgets.size() -
                D.LostGadgets.size(),
            NoDift.Gadgets.size());
  // Cross-preset diffs record deltas but are not engine regressions.
  for (const auto &G : D.NewGadgets)
    EXPECT_NE(G.Site, 0u);

  // The delta itself is engine-invariant.
  ScanResult TeapotI = scanNormalized(
      Name, smallConfig("teapot", vm::Machine::Engine::Interpreter, 100));
  ScanResult NoDiftI = scanNormalized(
      Name,
      smallConfig("teapot-nodift", vm::Machine::Engine::Interpreter, 100));
  ScanDiff DI = diffScans(TeapotI, NoDiftI, {});
  EXPECT_EQ(D.NewGadgets.size(), DI.NewGadgets.size());
  EXPECT_EQ(D.LostGadgets.size(), DI.LostGadgets.size());
}

// The proggen: pseudo-workload spelling through Scanner::loadWorkload.
TEST(DiffScan, ProgGenPseudoWorkload) {
  Scanner S;
  ASSERT_FALSE(static_cast<bool>(S.loadWorkload("proggen:5:3")));
  ASSERT_NE(S.binary(), nullptr);
  // Auto-adopted sample corpus.
  EXPECT_EQ(S.seeds().size(), lang::sampleInputs({5, 3}).size());

  // Equivalent to loadGenerated with the same options.
  lang::ProgGenOptions Opts;
  Opts.Seed = 5;
  Opts.Size = 3;
  Scanner S2;
  ASSERT_FALSE(static_cast<bool>(S2.loadGenerated(Opts)));
  EXPECT_EQ(S.binary()->serialize(), S2.binary()->serialize());
  EXPECT_EQ(S.seeds(), S2.seeds());

  // Default size when the field is omitted.
  Scanner S3;
  EXPECT_FALSE(static_cast<bool>(S3.loadWorkload("proggen:5")));

  // Malformed spellings are diagnosed, not crashed on.
  for (const char *Bad : {"proggen:", "proggen:abc", "proggen:1:xyz",
                          "proggen:1:2:3", "proggen:99999999999999999999"}) {
    Scanner SB;
    Error E = SB.loadWorkload(Bad);
    EXPECT_TRUE(static_cast<bool>(E)) << Bad;
    if (E)
      EXPECT_NE(E.message().find("proggen"), std::string::npos) << Bad;
  }
}

} // namespace
