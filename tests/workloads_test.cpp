//===- tests/workloads_test.cpp - Evaluation workloads + injector -----------===//

#include "TestUtil.h"
#include "disasm/Disassembler.h"
#include "ir/Layout.h"
#include "workloads/Harness.h"
#include "workloads/Injector.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::workloads;

namespace {

class WorkloadSuite : public ::testing::TestWithParam<const Workload *> {};

std::vector<const Workload *> allParams() {
  std::vector<const Workload *> Out;
  for (const Workload &W : allWorkloads())
    Out.push_back(&W);
  return Out;
}

} // namespace

TEST_P(WorkloadSuite, CompilesAndRunsSeeds) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  for (const auto &Seed : W.Seeds()) {
    RunResult R = runNative(Bin, Seed);
    EXPECT_EQ(R.Stop.Kind, vm::StopKind::Halted)
        << W.Name << " faulted on a seed input";
    EXPECT_EQ(R.Stop.ExitStatus, 0u) << W.Name;
    EXPECT_FALSE(R.Output.empty()) << W.Name;
  }
}

TEST_P(WorkloadSuite, LargeInputRunsLong) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  auto Large = W.LargeInput(3000);
  EXPECT_GT(Large.size(), 1000u);
  RunResult R = runNative(Bin, Large);
  EXPECT_EQ(R.Stop.Kind, vm::StopKind::Halted) << W.Name;
  // Large inputs genuinely exercise the parser.
  EXPECT_GT(R.Insts, 10000u) << W.Name;
}

TEST_P(WorkloadSuite, SurvivesRandomInputs) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  vm::Machine M;
  cantFail(M.loadObject(Bin));
  M.captureBaseline();
  RNG R(1234);
  for (int I = 0; I != 50; ++I) {
    std::vector<uint8_t> In(R.below(200));
    for (auto &B : In)
      B = static_cast<uint8_t>(R.next());
    M.resetToBaseline();
    M.setInput(In);
    vm::StopState S = M.run(5'000'000);
    EXPECT_EQ(S.Kind, vm::StopKind::Halted)
        << W.Name << " crashed on random input " << I
        << " (memory-safety bug in the workload, which the threat model"
           " assumes away)";
  }
}

TEST_P(WorkloadSuite, InstrumentedSeedsBehaveIdentically) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  auto RW = core::rewriteBinary(Bin, {});
  ASSERT_TRUE(RW) << RW.message();
  runtime::RuntimeOptions RT;
  InstrumentedTarget T(*RW, RT);
  for (const auto &Seed : W.Seeds()) {
    RunResult Native = runNative(Bin, Seed);
    T.execute(Seed);
    EXPECT_EQ(T.LastStop.Kind, vm::StopKind::Halted) << W.Name;
    EXPECT_EQ(T.LastStop.ExitStatus, Native.Stop.ExitStatus) << W.Name;
    EXPECT_EQ(T.M.output(), Native.Output) << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite, ::testing::ValuesIn(allParams()),
    [](const ::testing::TestParamInfo<const Workload *> &I) {
      return std::string(I.param->Name);
    });

TEST(WorkloadRegistry, LookupAndOrder) {
  // The paper's five, in its order, then the scenario-diversity four.
  EXPECT_EQ(allWorkloads().size(), 9u);
  EXPECT_NE(findWorkload("brotli"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);
  EXPECT_STREQ(allWorkloads()[0].Name, "jsmn");
  EXPECT_STREQ(allWorkloads()[4].Name, "openssl");
  EXPECT_STREQ(allWorkloads()[5].Name, "base64");
  EXPECT_STREQ(allWorkloads()[8].Name, "varint");
  // Every entry carries a non-empty description (--list-workloads).
  for (const Workload &W : allWorkloads()) {
    ASSERT_NE(W.Desc, nullptr) << W.Name;
    EXPECT_GT(strlen(W.Desc), 0u) << W.Name;
  }
}

TEST(WorkloadRegistry, LookupIsCaseInsensitive) {
  EXPECT_EQ(findWorkload("Brotli"), findWorkload("brotli"));
  EXPECT_EQ(findWorkload("JSMN"), findWorkload("jsmn"));
  EXPECT_EQ(findWorkload("Base64"), findWorkload("base64"));
  EXPECT_EQ(findWorkload("LIBYAML"), findWorkload("libyaml"));
  EXPECT_NE(findWorkload("SMTP"), nullptr);
}

// Unknown names return null — never abort — including near-misses,
// prefixes, and hostile spellings.
TEST(WorkloadRegistry, UnknownNamesReturnNull) {
  for (const char *Bad :
       {"", "jsm", "jsmnn", "jsmn ", " jsmn", "base", "base640",
        "proggen:1:2", "a-very-long-name-that-matches-nothing", "\xff\xfe"})
    EXPECT_EQ(findWorkload(Bad), nullptr) << "'" << Bad << "'";
}

//===----------------------------------------------------------------------===//
// Golden outputs for the scenario-diversity workloads: fixed inputs,
// exact expected bytes. These pin the MiniCC programs' semantics — a
// behavior change (even a benign-looking one) invalidates the golden
// scan baselines, so it must be deliberate.
//===----------------------------------------------------------------------===//

namespace {

std::vector<uint8_t> bytes(const char *S) {
  return std::vector<uint8_t>(S, S + strlen(S));
}

std::vector<uint8_t> runWorkload(const char *Name,
                                 const std::vector<uint8_t> &In) {
  const Workload *W = findWorkload(Name);
  EXPECT_NE(W, nullptr) << Name;
  obj::ObjectFile Bin = compileOrDie(W->Source);
  RunResult R = runNative(Bin, In);
  EXPECT_EQ(R.Stop.Kind, vm::StopKind::Halted) << Name;
  EXPECT_EQ(R.Stop.ExitStatus, 0u) << Name;
  return R.Output;
}

} // namespace

TEST(WorkloadGolden, Base64) {
  // "Zm9vYmFy" -> "foobar": r = 6, h = fold of "foobar".
  // h = (((((('f'*131+'o')*131+'o')*131+'o'... ) & 0xffffff at each step.
  uint64_t H = 0;
  for (char C : std::string("foobar"))
    H = (H * 131 + static_cast<uint8_t>(C)) & 16777215;
  std::vector<uint8_t> Expect = {6, static_cast<uint8_t>(H & 255),
                                 static_cast<uint8_t>((H >> 8) & 255)};
  EXPECT_EQ(runWorkload("base64", bytes("Zm9vYmFy")), Expect);

  // Padding: "TQ==" -> "M" (1 byte).
  uint64_t H2 = static_cast<uint8_t>('M') & 16777215;
  std::vector<uint8_t> Expect2 = {1, static_cast<uint8_t>(H2 & 255),
                                  static_cast<uint8_t>((H2 >> 8) & 255)};
  EXPECT_EQ(runWorkload("base64", bytes("TQ==")), Expect2);

  // Invalid character: error code -3 (res[0] = 0xfd), hash 0.
  EXPECT_EQ(runWorkload("base64", bytes("Zm9v*mFy")),
            (std::vector<uint8_t>{0xfd, 0, 0}));
  // Data after padding: -2.
  EXPECT_EQ(runWorkload("base64", bytes("TQ==AA==")),
            (std::vector<uint8_t>{0xfe, 0, 0}));
}

TEST(WorkloadGolden, UrlParse) {
  // "http://h/abc": plen 4 ("/abc"), nq 0, port 0 -> r = 4*1000000.
  uint64_t R = 4 * 1000000;
  std::vector<uint8_t> Expect = {static_cast<uint8_t>(R & 255),
                                 static_cast<uint8_t>((R >> 8) & 255), 0};
  EXPECT_EQ(runWorkload("urlparse", bytes("http://h/abc")), Expect);

  // Port and two query params: "http://h:8080/x?a=1&b=2"
  // plen 2 ("/x"), nq 2, port 8080 -> r = 2*1000000 + 2*100000 + 8080.
  uint64_t R2 = 2 * 1000000 + 2 * 100000 + 8080;
  std::vector<uint8_t> Expect2 = {static_cast<uint8_t>(R2 & 255),
                                  static_cast<uint8_t>((R2 >> 8) & 255), 2};
  EXPECT_EQ(runWorkload("urlparse", bytes("http://h:8080/x?a=1&b=2")),
            Expect2);

  // Percent-decoding: "%41" is one decoded byte.
  // "s://h/%41%42" -> path "/AB" plen 3.
  uint64_t R3 = 3 * 1000000;
  EXPECT_EQ(runWorkload("urlparse", bytes("s://h/%41%42")),
            (std::vector<uint8_t>{static_cast<uint8_t>(R3 & 255),
                                  static_cast<uint8_t>((R3 >> 8) & 255),
                                  0}));

  // Missing scheme separator: error -2 (res[0]=0xfe, res[1]=0xff).
  EXPECT_EQ(runWorkload("urlparse", bytes("nocolon")),
            (std::vector<uint8_t>{0xfe, 0xff, 0}));
}

TEST(WorkloadGolden, Smtp) {
  // Full session: HELO, MAIL, RCPT, DATA, one body line, ".", QUIT =
  // 7 lines processed, final state 5 -> session = 7*100+5 = 705.
  // Body hash folds "body" (the "." terminator line isn't hashed).
  auto In = bytes("HELO mx.example\nMAIL FROM:<a>\nRCPT TO:<b>\nDATA\n"
                  "body\n.\nQUIT\n");
  uint64_t H = 0;
  for (char C : std::string("body"))
    H = (H * 31 + static_cast<uint8_t>(C)) & 16777215;
  uint64_t R = 705;
  std::vector<uint8_t> Expect = {
      static_cast<uint8_t>(R & 255), static_cast<uint8_t>(H & 255),
      static_cast<uint8_t>((H >> 8) & 255), 0}; // nrcpt reset by "."
  EXPECT_EQ(runWorkload("smtp", In), Expect);

  // Out-of-order MAIL before HELO: error -3 (res[0] = 0xfd).
  EXPECT_EQ(runWorkload("smtp", bytes("MAIL FROM:<a>\n")),
            (std::vector<uint8_t>{0xfd, 0, 0, 0}));

  // Unknown command: -8 (0xf8).
  EXPECT_EQ(runWorkload("smtp", bytes("EHLO h\n")),
            (std::vector<uint8_t>{0xf8, 0, 0, 0}));
}

TEST(WorkloadGolden, Varint) {
  // field1 varint 5, field2 bytes "abc", end marker.
  // acc = (0 + 5) then fold "abc" with *17: ((5*17+97)*17+98)*17+99.
  uint64_t Acc = 5;
  for (char C : std::string("abc"))
    Acc = (Acc * 17 + static_cast<uint8_t>(C)) & 16777215;
  std::vector<uint8_t> In = {0x08, 5, 0x12, 3, 'a', 'b', 'c', 0x00};
  std::vector<uint8_t> Expect = {
      static_cast<uint8_t>(Acc & 255),
      static_cast<uint8_t>((Acc >> 8) & 255), 2, 1}; // 2 records, 1 in f1
  EXPECT_EQ(runWorkload("varint", In), Expect);

  // Truncated varint: error -10 -> res[0]=0xf6, res[1]=0xff.
  EXPECT_EQ(runWorkload("varint", {0x80}),
            (std::vector<uint8_t>{0xf6, 0xff, 0, 0}));

  // Length-delimited record longer than the remaining input: -13.
  EXPECT_EQ(runWorkload("varint", {0x12, 200, 'x'}),
            (std::vector<uint8_t>{0xf3, 0xff, 0, 0}));
}

//===----------------------------------------------------------------------===//
// Artificial gadget injection (the Table 3 methodology)
//===----------------------------------------------------------------------===//

namespace {

ir::Module liftWorkload(const Workload &W) {
  obj::ObjectFile Bin = compileOrDie(W.Source);
  auto M = disasm::disassemble(Bin);
  EXPECT_TRUE(M) << (M ? "" : M.message());
  if (!M)
    abort();
  return std::move(*M);
}

} // namespace

TEST(Injector, InjectsRequestedCounts) {
  const Workload &W = *findWorkload("libyaml");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = W.InjectCount; // 10
  O.UnreachableFuncs = W.UnreachableFuncs;
  auto Res = injectGadgets(M, O);
  ASSERT_TRUE(Res) << Res.message();
  EXPECT_EQ(Res->SiteMarkers.size(), 10u);
  EXPECT_EQ(Res->UnreachableMarkers.size(), 2u);
  EXPECT_EQ(Res->GadgetFuncIdx.size(), 10u);
  EXPECT_NE(Res->InjInputAddr, 0u);
}

TEST(Injector, InjectedBinaryStillBehaves) {
  const Workload &W = *findWorkload("jsmn");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = 3;
  auto Res = injectGadgets(M, O);
  ASSERT_TRUE(Res) << Res.message();

  obj::ObjectFile Out;
  ASSERT_TRUE(ir::layOut(M, Out));
  // In-bounds pokes keep the program's observable behaviour: same
  // output as the uninjected binary on the seed corpus.
  obj::ObjectFile Clean = compileOrDie(W.Source);
  for (const auto &Seed : W.Seeds()) {
    RunResult Before = runNative(Clean, Seed);
    vm::Machine Mach;
    cantFail(Mach.loadObject(Out));
    Mach.Mem.writeUnsigned(Res->InjInputAddr, 5, 8); // in-bounds index
    Mach.setInput(Seed);
    vm::StopState S = Mach.run(20'000'000);
    EXPECT_EQ(S.Kind, vm::StopKind::Halted);
    EXPECT_EQ(S.ExitStatus, Before.Stop.ExitStatus);
    EXPECT_EQ(Mach.output(), Before.Output);
  }
}

TEST(Injector, TeapotFindsInjectedGadgets) {
  const Workload &W = *findWorkload("jsmn");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = 3;
  auto Res = injectGadgets(M, O);
  ASSERT_TRUE(Res) << Res.message();

  auto RW = core::rewriteModule(std::move(M), {});
  ASSERT_TRUE(RW) << RW.message();
  // Table 3 configuration: only the injected variable is "user input".
  runtime::RuntimeOptions RT;
  RT.TaintInput = false;
  RT.MassagePolicy = false;
  RT.ExtraTaintAddr = Res->InjInputAddr;
  RT.ExtraTaintLen = 8;
  InstrumentedTarget T(*RW, RT);
  T.pokeInputTo(Res->InjInputAddr);

  // Out-of-bounds pokes on the seed corpus must expose the gadgets.
  for (const auto &Seed : W.Seeds()) {
    std::vector<uint8_t> In = Seed;
    In.insert(In.end(), {200, 0, 0, 0, 0, 0, 0, 0});
    T.execute(In);
  }
  // Every report lands on an injected site (no false positives), and at
  // least one gadget was found.
  std::set<uint64_t> Markers(Res->SiteMarkers.begin(),
                             Res->SiteMarkers.end());
  EXPECT_GT(T.RT.Reports.unique().size(), 0u);
  for (const auto &R : T.RT.Reports.unique())
    EXPECT_TRUE(Markers.count(R.Site))
        << "false positive at " << std::hex << R.Site;
}

// Injection ground-truth round-trip over the scenario-diversity
// workloads: each publishes an InjectCount (+ unreachable functions for
// smtp), the injector honors it, the injected binary still behaves on
// the seed corpus, and the Table 3 scan finds gadgets only at injected
// sites.
TEST(Injector, NewWorkloadsRoundTrip) {
  for (const char *Name : {"base64", "urlparse", "smtp", "varint"}) {
    SCOPED_TRACE(Name);
    const Workload &W = *findWorkload(Name);
    ASSERT_GT(W.InjectCount, 0u);

    ir::Module M = liftWorkload(W);
    InjectorOptions O;
    O.Count = W.InjectCount;
    O.UnreachableFuncs = W.UnreachableFuncs;
    auto Res = injectGadgets(M, O);
    ASSERT_TRUE(Res) << Res.message();
    EXPECT_EQ(Res->SiteMarkers.size(), W.InjectCount);
    EXPECT_EQ(Res->UnreachableMarkers.size(), W.UnreachableFuncs.size());

    // In-bounds poke: observable behaviour unchanged on the seeds.
    obj::ObjectFile Out;
    ASSERT_TRUE(ir::layOut(M, Out));
    obj::ObjectFile Clean = compileOrDie(W.Source);
    for (const auto &Seed : W.Seeds()) {
      RunResult Before = runNative(Clean, Seed);
      vm::Machine Mach;
      cantFail(Mach.loadObject(Out));
      Mach.Mem.writeUnsigned(Res->InjInputAddr, 5, 8);
      Mach.setInput(Seed);
      vm::StopState S = Mach.run(20'000'000);
      EXPECT_EQ(S.Kind, vm::StopKind::Halted);
      EXPECT_EQ(Mach.output(), Before.Output);
    }

    // Out-of-bounds poke under the Table 3 runtime config: gadgets
    // found, all at injected sites.
    auto RW = core::rewriteModule(std::move(M), {});
    ASSERT_TRUE(RW) << RW.message();
    runtime::RuntimeOptions RT;
    RT.TaintInput = false;
    RT.MassagePolicy = false;
    RT.ExtraTaintAddr = Res->InjInputAddr;
    RT.ExtraTaintLen = 8;
    InstrumentedTarget T(*RW, RT);
    T.pokeInputTo(Res->InjInputAddr);
    for (const auto &Seed : W.Seeds()) {
      std::vector<uint8_t> In = Seed;
      In.insert(In.end(), {200, 0, 0, 0, 0, 0, 0, 0});
      T.execute(In);
    }
    std::set<uint64_t> Markers(Res->SiteMarkers.begin(),
                               Res->SiteMarkers.end());
    EXPECT_GT(T.RT.Reports.unique().size(), 0u);
    for (const auto &R : T.RT.Reports.unique())
      EXPECT_TRUE(Markers.count(R.Site))
          << "false positive at " << std::hex << R.Site;
  }
}

TEST(Injector, FailsOnMissingUnreachableFunction) {
  const Workload &W = *findWorkload("jsmn");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = 3;
  O.UnreachableFuncs = {"no_such_function"};
  EXPECT_FALSE(injectGadgets(M, O));
}

TEST(Injector, DeterministicUnderSeed) {
  const Workload &W = *findWorkload("libhtp");
  InjectorOptions O;
  O.Count = 7;
  ir::Module M1 = liftWorkload(W);
  ir::Module M2 = liftWorkload(W);
  auto R1 = injectGadgets(M1, O);
  auto R2 = injectGadgets(M2, O);
  ASSERT_TRUE(R1);
  ASSERT_TRUE(R2);
  EXPECT_EQ(R1->SiteMarkers, R2->SiteMarkers);
  EXPECT_EQ(R1->NestedMarkers, R2->NestedMarkers);
}
