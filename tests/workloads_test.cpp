//===- tests/workloads_test.cpp - Evaluation workloads + injector -----------===//

#include "TestUtil.h"
#include "disasm/Disassembler.h"
#include "ir/Layout.h"
#include "workloads/Harness.h"
#include "workloads/Injector.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::workloads;

namespace {

class WorkloadSuite : public ::testing::TestWithParam<const Workload *> {};

std::vector<const Workload *> allParams() {
  std::vector<const Workload *> Out;
  for (const Workload &W : allWorkloads())
    Out.push_back(&W);
  return Out;
}

} // namespace

TEST_P(WorkloadSuite, CompilesAndRunsSeeds) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  for (const auto &Seed : W.Seeds()) {
    RunResult R = runNative(Bin, Seed);
    EXPECT_EQ(R.Stop.Kind, vm::StopKind::Halted)
        << W.Name << " faulted on a seed input";
    EXPECT_EQ(R.Stop.ExitStatus, 0u) << W.Name;
    EXPECT_FALSE(R.Output.empty()) << W.Name;
  }
}

TEST_P(WorkloadSuite, LargeInputRunsLong) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  auto Large = W.LargeInput(3000);
  EXPECT_GT(Large.size(), 1000u);
  RunResult R = runNative(Bin, Large);
  EXPECT_EQ(R.Stop.Kind, vm::StopKind::Halted) << W.Name;
  // Large inputs genuinely exercise the parser.
  EXPECT_GT(R.Insts, 10000u) << W.Name;
}

TEST_P(WorkloadSuite, SurvivesRandomInputs) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  vm::Machine M;
  cantFail(M.loadObject(Bin));
  M.captureBaseline();
  RNG R(1234);
  for (int I = 0; I != 50; ++I) {
    std::vector<uint8_t> In(R.below(200));
    for (auto &B : In)
      B = static_cast<uint8_t>(R.next());
    M.resetToBaseline();
    M.setInput(In);
    vm::StopState S = M.run(5'000'000);
    EXPECT_EQ(S.Kind, vm::StopKind::Halted)
        << W.Name << " crashed on random input " << I
        << " (memory-safety bug in the workload, which the threat model"
           " assumes away)";
  }
}

TEST_P(WorkloadSuite, InstrumentedSeedsBehaveIdentically) {
  const Workload &W = *GetParam();
  obj::ObjectFile Bin = compileOrDie(W.Source);
  auto RW = core::rewriteBinary(Bin, {});
  ASSERT_TRUE(RW) << RW.message();
  runtime::RuntimeOptions RT;
  InstrumentedTarget T(*RW, RT);
  for (const auto &Seed : W.Seeds()) {
    RunResult Native = runNative(Bin, Seed);
    T.execute(Seed);
    EXPECT_EQ(T.LastStop.Kind, vm::StopKind::Halted) << W.Name;
    EXPECT_EQ(T.LastStop.ExitStatus, Native.Stop.ExitStatus) << W.Name;
    EXPECT_EQ(T.M.output(), Native.Output) << W.Name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadSuite, ::testing::ValuesIn(allParams()),
    [](const ::testing::TestParamInfo<const Workload *> &I) {
      return std::string(I.param->Name);
    });

TEST(WorkloadRegistry, LookupAndOrder) {
  EXPECT_EQ(allWorkloads().size(), 5u);
  EXPECT_NE(findWorkload("brotli"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);
  EXPECT_STREQ(allWorkloads()[0].Name, "jsmn");
}

//===----------------------------------------------------------------------===//
// Artificial gadget injection (the Table 3 methodology)
//===----------------------------------------------------------------------===//

namespace {

ir::Module liftWorkload(const Workload &W) {
  obj::ObjectFile Bin = compileOrDie(W.Source);
  auto M = disasm::disassemble(Bin);
  EXPECT_TRUE(M) << (M ? "" : M.message());
  if (!M)
    abort();
  return std::move(*M);
}

} // namespace

TEST(Injector, InjectsRequestedCounts) {
  const Workload &W = *findWorkload("libyaml");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = W.InjectCount; // 10
  O.UnreachableFuncs = W.UnreachableFuncs;
  auto Res = injectGadgets(M, O);
  ASSERT_TRUE(Res) << Res.message();
  EXPECT_EQ(Res->SiteMarkers.size(), 10u);
  EXPECT_EQ(Res->UnreachableMarkers.size(), 2u);
  EXPECT_EQ(Res->GadgetFuncIdx.size(), 10u);
  EXPECT_NE(Res->InjInputAddr, 0u);
}

TEST(Injector, InjectedBinaryStillBehaves) {
  const Workload &W = *findWorkload("jsmn");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = 3;
  auto Res = injectGadgets(M, O);
  ASSERT_TRUE(Res) << Res.message();

  obj::ObjectFile Out;
  ASSERT_TRUE(ir::layOut(M, Out));
  // In-bounds pokes keep the program's observable behaviour: same
  // output as the uninjected binary on the seed corpus.
  obj::ObjectFile Clean = compileOrDie(W.Source);
  for (const auto &Seed : W.Seeds()) {
    RunResult Before = runNative(Clean, Seed);
    vm::Machine Mach;
    cantFail(Mach.loadObject(Out));
    Mach.Mem.writeUnsigned(Res->InjInputAddr, 5, 8); // in-bounds index
    Mach.setInput(Seed);
    vm::StopState S = Mach.run(20'000'000);
    EXPECT_EQ(S.Kind, vm::StopKind::Halted);
    EXPECT_EQ(S.ExitStatus, Before.Stop.ExitStatus);
    EXPECT_EQ(Mach.output(), Before.Output);
  }
}

TEST(Injector, TeapotFindsInjectedGadgets) {
  const Workload &W = *findWorkload("jsmn");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = 3;
  auto Res = injectGadgets(M, O);
  ASSERT_TRUE(Res) << Res.message();

  auto RW = core::rewriteModule(std::move(M), {});
  ASSERT_TRUE(RW) << RW.message();
  // Table 3 configuration: only the injected variable is "user input".
  runtime::RuntimeOptions RT;
  RT.TaintInput = false;
  RT.MassagePolicy = false;
  RT.ExtraTaintAddr = Res->InjInputAddr;
  RT.ExtraTaintLen = 8;
  InstrumentedTarget T(*RW, RT);
  T.pokeInputTo(Res->InjInputAddr);

  // Out-of-bounds pokes on the seed corpus must expose the gadgets.
  for (const auto &Seed : W.Seeds()) {
    std::vector<uint8_t> In = Seed;
    In.insert(In.end(), {200, 0, 0, 0, 0, 0, 0, 0});
    T.execute(In);
  }
  // Every report lands on an injected site (no false positives), and at
  // least one gadget was found.
  std::set<uint64_t> Markers(Res->SiteMarkers.begin(),
                             Res->SiteMarkers.end());
  EXPECT_GT(T.RT.Reports.unique().size(), 0u);
  for (const auto &R : T.RT.Reports.unique())
    EXPECT_TRUE(Markers.count(R.Site))
        << "false positive at " << std::hex << R.Site;
}

TEST(Injector, FailsOnMissingUnreachableFunction) {
  const Workload &W = *findWorkload("jsmn");
  ir::Module M = liftWorkload(W);
  InjectorOptions O;
  O.Count = 3;
  O.UnreachableFuncs = {"no_such_function"};
  EXPECT_FALSE(injectGadgets(M, O));
}

TEST(Injector, DeterministicUnderSeed) {
  const Workload &W = *findWorkload("libhtp");
  InjectorOptions O;
  O.Count = 7;
  ir::Module M1 = liftWorkload(W);
  ir::Module M2 = liftWorkload(W);
  auto R1 = injectGadgets(M1, O);
  auto R2 = injectGadgets(M2, O);
  ASSERT_TRUE(R1);
  ASSERT_TRUE(R2);
  EXPECT_EQ(R1->SiteMarkers, R2->SiteMarkers);
  EXPECT_EQ(R1->NestedMarkers, R2->NestedMarkers);
}
