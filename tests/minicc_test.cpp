//===- tests/minicc_test.cpp - MiniCC compiler tests -------------------------===//

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::lang;

namespace {

uint64_t runMain(const char *Src, const std::vector<uint8_t> &Input = {},
                 CompileOptions Opts = {}) {
  auto R = runNative(compileOrDie(Src, Opts), Input);
  EXPECT_EQ(R.Stop.Kind, vm::StopKind::Halted);
  return R.Stop.ExitStatus;
}

} // namespace

TEST(MiniCC, ArithmeticAndPrecedence) {
  EXPECT_EQ(runMain("int main() { return 2 + 3 * 4; }"), 14u);
  EXPECT_EQ(runMain("int main() { return (2 + 3) * 4; }"), 20u);
  EXPECT_EQ(runMain("int main() { return 100 / 7; }"), 14u);
  EXPECT_EQ(runMain("int main() { return 100 % 7; }"), 2u);
  EXPECT_EQ(runMain("int main() { return (1 << 6) | 3; }"), 67u);
  EXPECT_EQ(runMain("int main() { return (255 & 12) ^ 5; }"), 9u);
  EXPECT_EQ(runMain("int main() { return 64 >> 3; }"), 8u);
  EXPECT_EQ(runMain("int main() { return -(0 - 9); }"), 9u);
}

TEST(MiniCC, ComparisonsAndLogic) {
  EXPECT_EQ(runMain("int main() { return 3 < 4; }"), 1u);
  EXPECT_EQ(runMain("int main() { return 4 <= 3; }"), 0u);
  EXPECT_EQ(runMain("int main() { return 1 && 2; }"), 1u);
  EXPECT_EQ(runMain("int main() { return 0 || 0; }"), 0u);
  EXPECT_EQ(runMain("int main() { return !5; }"), 0u);
  EXPECT_EQ(runMain("int main() { return !0; }"), 1u);
}

TEST(MiniCC, ShortCircuitSkipsSideEffects) {
  EXPECT_EQ(runMain(R"(
int g;
int bump() { g = g + 1; return 1; }
int main() {
  g = 0;
  int x = 0 && bump();
  int y = 1 || bump();
  return g * 10 + x + y;
}
)"),
            1u);
}

TEST(MiniCC, ControlFlow) {
  EXPECT_EQ(runMain(R"(
int main() {
  int sum = 0;
  int i;
  for (i = 1; i <= 10; i = i + 1) {
    if (i % 2 == 0) { continue; }
    sum = sum + i;
  }
  while (sum > 20) { sum = sum - 1; }
  return sum;
}
)"),
            20u);
}

TEST(MiniCC, Recursion) {
  EXPECT_EQ(runMain(R"(
int fib(int n) {
  if (n < 2) { return n; }
  return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)"),
            144u);
}

TEST(MiniCC, ArraysAndPointers) {
  EXPECT_EQ(runMain(R"(
int g_tab[4] = {10, 20, 30, 40};
int main() {
  int local[4];
  int i;
  for (i = 0; i < 4; i = i + 1) { local[i] = g_tab[i] * 2; }
  int *p = local;
  int acc = 0;
  for (i = 0; i < 4; i = i + 1) { acc = acc + *(p + i); }
  return acc;
}
)"),
            200u);
}

TEST(MiniCC, CharsAndStrings) {
  EXPECT_EQ(runMain(R"(
char g_msg[8] = "hi";
int main() {
  char *s = "abc";
  return s[0] + s[2] - g_msg[0]; // 'a' + 'c' - 'h'
}
)"),
            static_cast<uint64_t>('a' + 'c' - 'h'));
}

TEST(MiniCC, AddressOfAndStores) {
  EXPECT_EQ(runMain(R"(
int main() {
  int x = 5;
  int *p = &x;
  *p = *p + 37;
  return x;
}
)"),
            42u);
}

TEST(MiniCC, GlobalsPersistAcrossCalls) {
  EXPECT_EQ(runMain(R"(
int counter;
int tick() { counter = counter + 1; return counter; }
int main() {
  tick(); tick(); tick();
  return counter;
}
)"),
            3u);
}

TEST(MiniCC, BuiltinsReadWrite) {
  auto Bin = compileOrDie(R"(
int main() {
  int n = input_size();
  char *buf = malloc(n + 1);
  read_input(buf, n);
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (buf[i] >= 'a' && buf[i] <= 'z') { buf[i] = buf[i] - 32; }
  }
  write_out(buf, n);
  free(buf);
  return n;
}
)");
  std::vector<uint8_t> In = {'a', 'B', 'c'};
  auto R = runNative(Bin, In);
  EXPECT_EQ(R.Stop.ExitStatus, 3u);
  std::vector<uint8_t> Want = {'A', 'B', 'C'};
  EXPECT_EQ(R.Output, Want);
}

namespace {
const char *SwitchProgram = R"(
int classify(int v) {
  switch (v) {
    case 0: { return 10; }
    case 1: { return 11; }
    case 2: { return 12; }
    case 3: { return 13; }
    default: { return 99; }
  }
  return -1;
}
int main() {
  return classify(0) + classify(2) * 10 + classify(7) * 100;
}
)";
} // namespace

/// Figure 2 both ways: the lowering strategy must not change behaviour.
TEST(MiniCC, SwitchBranchesVsJumpTableSameResult) {
  CompileOptions Br;
  Br.Switches = SwitchLowering::Branches;
  CompileOptions Jt;
  Jt.Switches = SwitchLowering::JumpTable;
  uint64_t A = runMain(SwitchProgram, {}, Br);
  uint64_t B = runMain(SwitchProgram, {}, Jt);
  EXPECT_EQ(A, B);
  EXPECT_EQ(A, 10u + 120u + 9900u);
}

TEST(MiniCC, SwitchLoweringShapesDiffer) {
  CompileOptions Br;
  Br.Switches = SwitchLowering::Branches;
  CompileOptions Jt;
  Jt.Switches = SwitchLowering::JumpTable;
  auto AsmBr = lang::compileToAsm(SwitchProgram, Br);
  auto AsmJt = lang::compileToAsm(SwitchProgram, Jt);
  ASSERT_TRUE(AsmBr);
  ASSERT_TRUE(AsmJt);
  // Branch lowering: compare-and-jump cascade, no indirect jump.
  EXPECT_EQ(AsmBr->find("jmpi"), std::string::npos);
  EXPECT_NE(AsmBr->find("j.eq"), std::string::npos);
  // Table lowering: indirect jump through a .rodata table.
  EXPECT_NE(AsmJt->find("jmpi"), std::string::npos);
  EXPECT_NE(AsmJt->find(".quad"), std::string::npos);
}

TEST(MiniCC, FenceBuiltinEmitsSerializingInst) {
  auto Asm = lang::compileToAsm("int main() { fence(); return 0; }");
  ASSERT_TRUE(Asm);
  EXPECT_NE(Asm->find("fence"), std::string::npos);
}

TEST(MiniCC, PointerParamsAcrossFunctions) {
  EXPECT_EQ(runMain(R"(
int sum(int *arr, int n) {
  int s = 0;
  int i;
  for (i = 0; i < n; i = i + 1) { s = s + arr[i]; }
  return s;
}
int main() {
  int v[5];
  int i;
  for (i = 0; i < 5; i = i + 1) { v[i] = i * i; }
  return sum(v, 5);
}
)"),
            30u);
}

TEST(MiniCC, ParseErrorsReported) {
  EXPECT_FALSE(lang::compile("int main() { return 1 + ; }"));
  EXPECT_FALSE(lang::compile("int main() { undefined_fn(); }"));
  EXPECT_FALSE(lang::compile("int main() { return x; }"));
  EXPECT_FALSE(lang::compile("int main() { break; }"));
  EXPECT_FALSE(lang::compile("int f() { return 0; }")); // no main
}

TEST(MiniCC, NestedScopesShadowing) {
  EXPECT_EQ(runMain(R"(
int main() {
  int x = 1;
  {
    int x = 2;
    { x = x + 10; }
    if (x != 12) { return 0; }
  }
  return x;
}
)"),
            1u);
}
