//===- tests/api_test.cpp - teapot::Scanner facade tests --------------------===//
//
// The API-stability contract of the src/api/ layer:
//
//   1. Facade == hand-wired: a Scanner run reproduces the classic
//      lang::compile → core::rewriteBinary → fuzz::Campaign path
//      byte-for-byte (gadgets AND corpus) under the same seed.
//   2. ScanResult JSON round-trips losslessly (toJson → fromJson → ==,
//      and dump → parse → dump is byte-identical).
//   3. Config errors propagate as Expected/Error diagnostics, never
//      prints or exits.
//
//===----------------------------------------------------------------------===//

#include "api/Scanner.h"
#include "core/TeapotRewriter.h"
#include "fuzz/Campaign.h"
#include "lang/MiniCC.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include "Fixtures.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>

using namespace teapot;

namespace {

std::vector<runtime::ReportSink::Key>
keysOf(const std::vector<runtime::GadgetReport> &Rs) {
  std::vector<runtime::ReportSink::Key> Keys;
  for (const auto &R : Rs)
    Keys.push_back(runtime::ReportSink::keyOf(R));
  return Keys;
}

/// The pre-facade hand-wired pipeline, exactly as scan_cots_binary used
/// to spell it: compile, strip, rewriteBinary, Campaign over the
/// instrumented target factory with the workload's seeds.
struct HandWired {
  core::RewriteResult RW;
  std::vector<runtime::GadgetReport> Gadgets;
  std::vector<std::vector<uint8_t>> Corpus;
  fuzz::CampaignStats Stats;
};

HandWired runHandWired(const char *WorkloadName,
                       const fuzz::CampaignOptions &CO) {
  const workloads::Workload *W = workloads::findWorkload(WorkloadName);
  EXPECT_NE(W, nullptr);
  auto Bin = lang::compile(W->Source);
  EXPECT_TRUE(static_cast<bool>(Bin));
  Bin->strip();
  auto RW = core::rewriteBinary(*Bin, core::RewriterOptions());
  EXPECT_TRUE(static_cast<bool>(RW));

  fuzz::Campaign C(
      workloads::instrumentedTargetFactory(*RW, runtime::RuntimeOptions()),
      CO);
  for (const auto &Seed : W->Seeds())
    C.addSeed(Seed);
  fuzz::CampaignStats S = C.run();
  return {std::move(*RW), C.gadgets().unique(), C.corpus(), S};
}

fuzz::CampaignOptions smallCampaign(unsigned Workers) {
  fuzz::CampaignOptions CO;
  CO.Seed = 1;
  CO.TotalIterations = 400;
  CO.Workers = Workers;
  CO.SyncInterval = 128;
  CO.MaxInputLen = 256;
  return CO;
}

// --- 1. Facade == hand-wired ------------------------------------------------

class ApiEquivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(ApiEquivalence, FacadeMatchesHandWiredPath) {
  unsigned Workers = GetParam();
  HandWired Ref = runHandWired("jsmn", smallCampaign(Workers));

  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign = smallCampaign(Workers);
  Scanner S(Cfg);
  cantFail(S.loadWorkload("jsmn"));
  cantFail(S.rewrite());
  ScanResult R = cantFail(S.run());

  // Same campaign accounting...
  EXPECT_EQ(R.Executions, Ref.Stats.Executions);
  EXPECT_EQ(R.CorpusAdds, Ref.Stats.CorpusAdds);
  EXPECT_EQ(R.NormalEdges, Ref.Stats.NormalEdges);
  EXPECT_EQ(R.SpecEdges, Ref.Stats.SpecEdges);
  EXPECT_EQ(R.GuestInsts, Ref.Stats.GuestInsts);
  // ...the same gadget set in the same stable order...
  EXPECT_EQ(keysOf(R.Gadgets), keysOf(Ref.Gadgets));
  // ...and a byte-identical corpus.
  EXPECT_EQ(S.corpus(), Ref.Corpus);
  // Rewrite metadata surfaced faithfully.
  EXPECT_EQ(R.BranchSites, Ref.RW.Meta.Trampolines.size());
  EXPECT_EQ(R.MarkerSites, Ref.RW.Meta.MarkerSites.size());
  EXPECT_EQ(R.NormalGuards, Ref.RW.Meta.NumNormalGuards);
  EXPECT_EQ(R.SpecGuards, Ref.RW.Meta.NumSpecGuards);
}

INSTANTIATE_TEST_SUITE_P(Workers, ApiEquivalence, ::testing::Values(1u, 2u));

TEST(Api, RunIsReproducible) {
  auto Once = [] {
    ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
    Cfg.Campaign = smallCampaign(2);
    Scanner S(Cfg);
    cantFail(S.loadWorkload("jsmn"));
    cantFail(S.rewrite());
    ScanResult R = cantFail(S.run());
    return std::make_tuple(keysOf(R.Gadgets), S.corpus(), R.Executions,
                           R.CorpusAdds, R.NormalEdges, R.SpecEdges);
  };
  EXPECT_EQ(Once(), Once());
}

TEST(Api, RunInputsMatchesHandWiredTarget) {
  // The single-input sweep (quickstart/patch_and_verify workflow)
  // against the hand-wired InstrumentedTarget it replaces.
  auto Bin = lang::compile(testutil::V1Victim);
  ASSERT_TRUE(static_cast<bool>(Bin));
  Bin->strip();
  auto RW = core::rewriteBinary(*Bin, core::RewriterOptions());
  ASSERT_TRUE(static_cast<bool>(RW));
  workloads::InstrumentedTarget T(*RW, runtime::RuntimeOptions());
  for (uint8_t Idx : {5, 200, 255})
    T.execute({Idx});

  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Scanner S(Cfg);
  cantFail(S.loadSource(testutil::V1Victim));
  cantFail(S.rewrite());
  ScanResult R = cantFail(S.runInputs({{5}, {200}, {255}}));

  EXPECT_EQ(R.Executions, 3u);
  EXPECT_EQ(keysOf(R.Gadgets), keysOf(T.RT.Reports.unique()));
  EXPECT_EQ(R.Simulations, T.RT.Stats.Simulations);
  EXPECT_EQ(R.GuestInsts, T.executedInsts());
  EXPECT_GT(R.Gadgets.size(), 0u);
}

TEST(Api, PresetsDiffer) {
  // The four presets must materialize their documented configurations.
  ScanConfig Teapot = cantFail(ScanConfig::preset("teapot"));
  EXPECT_TRUE(Teapot.Rewriter.EnableDift);
  EXPECT_EQ(Teapot.Kind, ScanConfig::TargetKind::Instrumented);

  ScanConfig NoDift = cantFail(ScanConfig::preset("teapot-nodift"));
  EXPECT_FALSE(NoDift.Rewriter.EnableDift);
  EXPECT_FALSE(NoDift.Runtime.EnableDift);
  EXPECT_EQ(NoDift.Rewriter.Mode, core::RewriteMode::Teapot);

  ScanConfig SpecFuzz = cantFail(ScanConfig::preset("specfuzz-baseline"));
  EXPECT_EQ(SpecFuzz.Rewriter.Mode, core::RewriteMode::SpecFuzzBaseline);
  EXPECT_FALSE(SpecFuzz.Runtime.EnableDift);
  EXPECT_EQ(SpecFuzz.Runtime.Nesting, runtime::NestingPolicy::SpecFuzz);

  ScanConfig Native = cantFail(ScanConfig::preset("native"));
  EXPECT_EQ(Native.Kind, ScanConfig::TargetKind::Native);
}

TEST(Api, SpecFuzzBaselinePresetRuns) {
  ScanConfig Cfg = cantFail(ScanConfig::preset("specfuzz-baseline"));
  Scanner S(Cfg);
  cantFail(S.loadSource(testutil::V1Victim));
  cantFail(S.rewrite());
  ScanResult R = cantFail(S.runInputs({{200}}));
  // The SpecFuzz policy reports raw speculative violations with no
  // controllability classification.
  ASSERT_GT(R.Gadgets.size(), 0u);
  for (const auto &G : R.Gadgets) {
    EXPECT_EQ(G.Chan, runtime::Channel::Asan);
    EXPECT_EQ(G.Ctrl, runtime::Controllability::Unknown);
  }
}

TEST(Api, NativePresetRunsWithoutDetector) {
  ScanConfig Cfg = cantFail(ScanConfig::preset("native"));
  Cfg.Campaign = smallCampaign(1);
  Cfg.Campaign.TotalIterations = 50;
  Scanner S(Cfg);
  cantFail(S.loadWorkload("jsmn"));
  cantFail(S.rewrite()); // no-op for native
  EXPECT_EQ(S.rewriteResult(), nullptr);
  ScanResult R = cantFail(S.run());
  EXPECT_EQ(R.Executions, 50u);
  EXPECT_TRUE(R.Gadgets.empty());
  EXPECT_EQ(R.BranchSites, 0u);
}

TEST(Api, InjectionFindsGroundTruthSites) {
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign = smallCampaign(1);
  Cfg.InjectGadgets = true;
  Scanner S(Cfg);
  cantFail(S.loadWorkload("jsmn"));
  cantFail(S.rewrite());
  ASSERT_NE(S.injection(), nullptr);
  EXPECT_EQ(S.injection()->SiteMarkers.size(), 3u); // jsmn's InjectCount

  ScanResult R = cantFail(S.run());
  ASSERT_FALSE(R.InjectedSites.empty());
  // Every detected injected-site gadget must be a published marker, and
  // at least one must be found under this budget.
  std::set<uint64_t> Markers(R.InjectedSites.begin(), R.InjectedSites.end());
  size_t TruePositives = 0;
  for (const auto &G : R.Gadgets)
    TruePositives += Markers.count(G.Site);
  EXPECT_GT(TruePositives, 0u);
}

// --- 2. JSON round-trip -----------------------------------------------------

TEST(Api, ScanResultJsonRoundTripsFromRealRun) {
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign = smallCampaign(2);
  Scanner S(Cfg);
  cantFail(S.loadWorkload("jsmn"));
  cantFail(S.rewrite());
  ScanResult R = cantFail(S.run());

  std::string Doc = R.toJsonString();
  ScanResult Back = cantFail(ScanResult::fromJsonString(Doc));
  EXPECT_TRUE(R == Back);
  // Serialization is canonical: dump(parse(dump(x))) == dump(x).
  EXPECT_EQ(Back.toJsonString(), Doc);

  // Real runs record their host provenance.
  EXPECT_NE(Doc.find("\"host\""), std::string::npos);
  EXPECT_EQ(R.HostConcurrency, std::thread::hardware_concurrency());

  // Pre-host documents (no "host" object) still parse: the section is
  // schema-optional on read.
  size_t P = Doc.find("\"host\"");
  size_t End = Doc.find('}', P);
  ASSERT_NE(End, std::string::npos);
  std::string Old = Doc.substr(0, P) + Doc.substr(Doc.find('"', End + 1));
  ScanResult NoHost = cantFail(ScanResult::fromJsonString(Old));
  EXPECT_EQ(NoHost.HostConcurrency, 0u);
  EXPECT_FALSE(NoHost.HostJitBackend);
}

TEST(Api, ScanResultJsonRoundTripsEdgeValues) {
  ScanResult R;
  R.Workload = "edge \"case\"\n\tworkload";
  R.Preset = "teapot";
  R.Seed = ~0ULL; // UINT64_MAX must not round through a double
  R.Workers = 512;
  R.Iterations = 1ULL << 62;
  R.Passes.push_back(
      {"clone-shadow-functions", 0.1234567890123456789, 7, 3, 1,
       {{"trampolines", 42}, {"tag.programs", 9}}});
  R.BranchSites = 11;
  R.MarkerSites = 5;
  R.NormalGuards = 64;
  R.SpecGuards = 65;
  R.Executions = 123456789;
  R.Epochs = 3;
  R.CorpusAdds = 17;
  R.Imports = 2;
  R.GuestInsts = 0xdeadbeefcafeULL;
  R.CorpusSize = 99;
  R.NormalEdges = 40;
  R.SpecEdges = 41;
  R.WallSeconds = 1e-9;
  R.PerWorker.push_back({10, 1, 2, 3, 4, 5, 6});
  R.PerWorker.push_back({11, 0, 0, 0, 0, 0, 0});
  R.Simulations = 1000;
  R.NestedSimulations = 10;
  R.Rollbacks[static_cast<size_t>(isa::RollbackReason::Serializing)] = 5;
  R.Rollbacks[static_cast<size_t>(isa::RollbackReason::GuestFault)] = 1;
  R.HostConcurrency = 4096;
  R.HostJitBackend = true;
  R.InjectedSites = {0x10000000, 0x10000001};
  R.InjectInputAddr = 0x7fff0000;
  R.Gadgets.push_back({0x10000000, runtime::Channel::Cache,
                       runtime::Controllability::User, 7, 2});
  R.Gadgets.push_back({0xffffffffffffffffULL, runtime::Channel::Asan,
                       runtime::Controllability::Unknown, 0, 6});

  ScanResult Back = cantFail(ScanResult::fromJsonString(R.toJsonString()));
  EXPECT_TRUE(R == Back);
  EXPECT_EQ(Back.Seed, ~0ULL);
  EXPECT_EQ(Back.HostConcurrency, 4096u);
  EXPECT_TRUE(Back.HostJitBackend);
  EXPECT_EQ(Back.Gadgets[1].Site, 0xffffffffffffffffULL);
  EXPECT_EQ(Back.Passes[0].Counters.at("trampolines"), 42u);
  EXPECT_EQ(Back.toJsonString(), R.toJsonString());
}

TEST(Api, ScanResultFromJsonDiagnosesBadDocuments) {
  // Not JSON at all.
  auto E1 = ScanResult::fromJsonString("not json");
  EXPECT_FALSE(static_cast<bool>(E1));

  // Valid JSON, wrong schema.
  auto E2 = ScanResult::fromJsonString("{\"schema\": \"bogus.v9\"}");
  ASSERT_FALSE(static_cast<bool>(E2));
  EXPECT_NE(E2.message().find("unsupported schema"), std::string::npos);

  // Missing a required section.
  ScanResult R;
  R.Preset = "teapot";
  json::Value V = R.toJson();
  std::string Doc = V.dump();
  // Knock out the campaign section by renaming the key.
  size_t P = Doc.find("\"campaign\"");
  ASSERT_NE(P, std::string::npos);
  Doc.replace(P, 10, "\"renamed!\"");
  auto E3 = ScanResult::fromJsonString(Doc);
  ASSERT_FALSE(static_cast<bool>(E3));
  EXPECT_NE(E3.message().find("campaign"), std::string::npos);

  // A gadget with an unknown channel name.
  ScanResult G;
  G.Gadgets.push_back({1, runtime::Channel::MDS,
                       runtime::Controllability::User, 0, 1});
  std::string GDoc = G.toJsonString();
  size_t Q = GDoc.find("\"MDS\"");
  ASSERT_NE(Q, std::string::npos);
  GDoc.replace(Q, 5, "\"XYZ\"");
  auto E4 = ScanResult::fromJsonString(GDoc);
  ASSERT_FALSE(static_cast<bool>(E4));
  EXPECT_NE(E4.message().find("unknown channel"), std::string::npos);
}

// --- 3. Error propagation ---------------------------------------------------

TEST(Api, UnknownPresetIsDiagnosed) {
  auto C = ScanConfig::preset("speculative-teapot");
  ASSERT_FALSE(static_cast<bool>(C));
  EXPECT_NE(C.message().find("unknown preset"), std::string::npos);
  EXPECT_NE(C.message().find("specfuzz-baseline"), std::string::npos);
}

TEST(Api, BadConfigsFailValidation) {
  Scanner S;
  cantFail(S.loadWorkload("jsmn"));
  cantFail(S.rewrite());

  S.config().Campaign.Workers = 0;
  auto R1 = S.run();
  ASSERT_FALSE(static_cast<bool>(R1));
  EXPECT_NE(R1.message().find("workers"), std::string::npos);

  S.config().Campaign.Workers = ScanConfig::MaxWorkers + 1;
  auto R2 = S.run();
  ASSERT_FALSE(static_cast<bool>(R2));
  EXPECT_NE(R2.message().find("exceeds"), std::string::npos);

  S.config().Campaign.Workers = 1;
  S.config().RunBudget = ScanConfig::MaxRunBudget + 1;
  auto R3 = S.run();
  ASSERT_FALSE(static_cast<bool>(R3));
  EXPECT_NE(R3.message().find("budget"), std::string::npos);

  S.config().RunBudget = 0;
  auto R4 = S.run();
  ASSERT_FALSE(static_cast<bool>(R4));

  S.config().RunBudget = workloads::DefaultRunBudget;
  S.config().Campaign.MaxInputLen = 0;
  auto R5 = S.run();
  ASSERT_FALSE(static_cast<bool>(R5));
}

TEST(Api, ReloadResetsSeedCorpus) {
  // One binary, one corpus: re-loading must not accumulate or leak
  // seeds across binaries.
  Scanner S;
  cantFail(S.loadWorkload("jsmn"));
  size_t JsmnSeeds = S.seeds().size();
  ASSERT_GT(JsmnSeeds, 0u);
  cantFail(S.loadWorkload("jsmn"));
  EXPECT_EQ(S.seeds().size(), JsmnSeeds); // not doubled

  S.addSeed({1, 2, 3});
  cantFail(S.loadWorkload("libhtp"));
  const auto &Seeds = S.seeds();
  EXPECT_EQ(std::count(Seeds.begin(), Seeds.end(),
                       std::vector<uint8_t>({1, 2, 3})),
            0); // manual seed gone with its binary
}

TEST(Api, InjectionToggleAfterLoadStillSeesSymbols) {
  // The strip decision is taken at rewrite() time, so enabling
  // injection between load and rewrite must work — including for
  // libyaml, whose injection targets named unreachable functions that
  // stripping would have destroyed.
  Scanner S;
  cantFail(S.loadWorkload("libyaml"));
  S.config().InjectGadgets = true;
  cantFail(S.rewrite());
  ASSERT_NE(S.injection(), nullptr);
  EXPECT_EQ(S.injection()->UnreachableMarkers.size(), 2u); // Table 3
}

TEST(Api, PhaseOrderIsEnforced) {
  Scanner S;
  auto R1 = S.rewrite();
  ASSERT_TRUE(static_cast<bool>(R1)); // Error: no binary loaded
  EXPECT_NE(R1.message().find("no binary loaded"), std::string::npos);

  auto R2 = S.run();
  ASSERT_FALSE(static_cast<bool>(R2));

  cantFail(S.loadSource(testutil::V1Victim));
  auto R3 = S.run(); // loaded but not rewritten
  ASSERT_FALSE(static_cast<bool>(R3));
  EXPECT_NE(R3.message().find("rewrite()"), std::string::npos);

  auto R4 = S.loadWorkload("no-such-workload");
  ASSERT_TRUE(static_cast<bool>(R4));
  EXPECT_NE(R4.message().find("unknown workload"), std::string::npos);
}

} // namespace
