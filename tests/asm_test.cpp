//===- tests/asm_test.cpp - Assembler tests ---------------------------------===//

#include "asm/Assembler.h"
#include "isa/Encoding.h"
#include "obj/Layout.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::assembler;
using namespace teapot::isa;

namespace {

obj::ObjectFile mustAssemble(const char *Src) {
  auto R = assemble(Src);
  EXPECT_TRUE(R) << (R ? "" : R.message());
  if (!R)
    abort();
  return std::move(*R);
}

/// Decodes the whole .text of \p O.
std::vector<Decoded> decodeText(const obj::ObjectFile &O) {
  const obj::Section *T = O.findSection(".text");
  EXPECT_NE(T, nullptr);
  std::vector<Decoded> Out;
  size_t Off = 0;
  while (Off < T->Bytes.size()) {
    auto D = decode(T->Bytes.data(), T->Bytes.size(), Off);
    EXPECT_TRUE(D) << D.message();
    if (!D)
      break;
    Out.push_back(*D);
    Off += D->Length;
  }
  return Out;
}

} // namespace

TEST(Assembler, MinimalProgram) {
  auto O = mustAssemble(R"(
.text
main:
    mov r0, 7
    halt
)");
  EXPECT_EQ(O.Entry, obj::TextBase);
  auto Insts = decodeText(O);
  ASSERT_EQ(Insts.size(), 2u);
  EXPECT_EQ(Insts[0].I.Op, Opcode::MOV);
  EXPECT_EQ(Insts[0].I.B.Imm, 7);
  EXPECT_EQ(Insts[1].I.Op, Opcode::HALT);
}

TEST(Assembler, AllOperandShapes) {
  auto O = mustAssemble(R"(
.text
main:
    ld8 r0, [r1 + r2*8 + 16]
    ld1 r3, [r4 - 8]
    lds4 r5, [table]
    st2 [r0 + 4], r1
    st8 [buf + r2], 99
    lea r6, [r7 + r8*2]
    push 123
    push r9
    pop r10
    set.ge r11
    cmov.b r12, r13
    fence
    markernop
    ext 3
    ret
.rodata
table:
    .quad 1
.data
buf:
    .zero 16
)");
  auto Insts = decodeText(O);
  ASSERT_GE(Insts.size(), 14u);
  EXPECT_EQ(Insts[0].I.B.M.Base, R1);
  EXPECT_EQ(Insts[0].I.B.M.Index, R2);
  EXPECT_EQ(Insts[0].I.B.M.Scale, 8);
  EXPECT_EQ(Insts[0].I.B.M.Disp, 16);
  EXPECT_EQ(Insts[1].I.B.M.Disp, -8);
  EXPECT_EQ(Insts[1].I.Size, 1u);
  EXPECT_EQ(Insts[2].I.Op, Opcode::LOADS);
  EXPECT_EQ(Insts[2].I.B.M.Disp, static_cast<int64_t>(obj::RodataBase));
  EXPECT_EQ(Insts[4].I.Op, Opcode::STORE);
  // st8 [buf + r2], 99: base r2, symbol disp.
  EXPECT_EQ(Insts[4].I.A.M.Base, R2);
  EXPECT_EQ(Insts[4].I.A.M.Disp, static_cast<int64_t>(obj::DataBase));
  EXPECT_EQ(Insts[9].I.Op, Opcode::SET);
  EXPECT_EQ(Insts[9].I.CC, CondCode::GE);
  EXPECT_EQ(Insts[10].I.Op, Opcode::CMOV);
  EXPECT_EQ(Insts[10].I.CC, CondCode::B);
}

TEST(Assembler, BranchOffsetsResolve) {
  auto O = mustAssemble(R"(
.text
main:
    cmp r0, 10
    j.lt target
    jmp main
target:
    ret
)");
  auto Insts = decodeText(O);
  ASSERT_EQ(Insts.size(), 4u);
  // j.lt target: rel from end of j.lt to 'target' = length of jmp.
  uint64_t JmpLen = Insts[2].Length;
  EXPECT_EQ(static_cast<uint64_t>(Insts[1].I.A.Imm), JmpLen);
  // jmp main: negative offset back to start.
  uint64_t Sum = Insts[0].Length + Insts[1].Length + Insts[2].Length;
  EXPECT_EQ(Insts[2].I.A.Imm, -static_cast<int64_t>(Sum));
}

TEST(Assembler, DataDirectivesAndSymbols) {
  auto O = mustAssemble(R"(
.entry start
.text
.global start
start:
    halt
helper:
    ret
.func helper
.data
vals:
    .byte 1, 2, 3
    .word 0x1234
    .dword 7
    .quad helper
    .quad vals+8
str:
    .asciz "hi\n"
.bss
scratch:
    .space 64
)");
  const obj::Symbol *H = O.findSymbol("helper");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->Kind, obj::SymbolKind::Function);
  EXPECT_TRUE(O.findSymbol("start")->Global);

  const obj::Section *D = O.findSection(".data");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Bytes[0], 1);
  EXPECT_EQ(D->Bytes[3], 0x34); // .word little endian
  // .quad helper holds helper's address.
  uint64_t Q = 0;
  for (int I = 0; I != 8; ++I)
    Q |= static_cast<uint64_t>(D->Bytes[9 + I]) << (I * 8);
  EXPECT_EQ(Q, H->Addr);
  // .quad vals+8 holds vals address + 8.
  uint64_t Q2 = 0;
  for (int I = 0; I != 8; ++I)
    Q2 |= static_cast<uint64_t>(D->Bytes[17 + I]) << (I * 8);
  EXPECT_EQ(Q2, O.findSymbol("vals")->Addr + 8);
  // Relocation records were kept for the data words.
  EXPECT_EQ(O.Relocs.size(), 2u);

  const obj::Section *S = O.findSection(".bss");
  EXPECT_EQ(S->BssSize, 64u);
  EXPECT_GT(S->Addr, D->Addr);
}

TEST(Assembler, SymbolicImmediates) {
  auto O = mustAssemble(R"(
.text
main:
    mov r0, main
    mov r1, data+4
    halt
.data
data:
    .quad 0
)");
  auto Insts = decodeText(O);
  EXPECT_EQ(static_cast<uint64_t>(Insts[0].I.B.Imm), O.Entry);
  EXPECT_EQ(static_cast<uint64_t>(Insts[1].I.B.Imm), obj::DataBase + 4);
}

TEST(Assembler, AlignDirective) {
  auto O = mustAssemble(R"(
.text
main:
    halt
.data
a:
    .byte 1
    .align 8
b:
    .quad 2
)");
  EXPECT_EQ(O.findSymbol("b")->Addr % 8, 0u);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  auto R1 = assemble(".text\nmain:\n    bogus r0\n");
  ASSERT_FALSE(R1);
  EXPECT_NE(R1.message().find("line 3"), std::string::npos);

  auto R2 = assemble(".text\nmain:\n    jmp nowhere\n");
  ASSERT_FALSE(R2);
  EXPECT_NE(R2.message().find("nowhere"), std::string::npos);

  auto R3 = assemble(".text\nmain:\nmain:\n    halt\n");
  ASSERT_FALSE(R3);
  EXPECT_NE(R3.message().find("duplicate"), std::string::npos);

  auto R4 = assemble(".text\nx:\n    halt\n"); // no entry symbol 'main'
  ASSERT_FALSE(R4);
  EXPECT_NE(R4.message().find("entry"), std::string::npos);
}

TEST(Assembler, RejectsWrongOperandShapes) {
  EXPECT_FALSE(assemble(".text\nmain:\n    mov 5, r0\n"));
  EXPECT_FALSE(assemble(".text\nmain:\n    ld8 r0, r1\n"));
  EXPECT_FALSE(assemble(".text\nmain:\n    ret r0\n"));
  EXPECT_FALSE(assemble(".text\nmain:\n    st8 [r0], [r1]\n"));
}

TEST(Assembler, CommentsAndWhitespace) {
  auto O = mustAssemble(R"(
; leading comment
.text
main:          ; trailing comment
    mov r0, 1  # hash comment
    halt
)");
  EXPECT_EQ(decodeText(O).size(), 2u);
}
