//===- tests/isa_test.cpp - ISA model, condition codes, encoding -----------===//

#include "isa/Encoding.h"
#include "isa/Instruction.h"
#include "support/RNG.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::isa;

TEST(Opcode, TableConsistency) {
  for (unsigned I = 0; I != static_cast<unsigned>(Opcode::NumOpcodes); ++I) {
    const OpcodeInfo &Info = opcodeInfo(static_cast<Opcode>(I));
    EXPECT_NE(Info.Name, nullptr);
    if (Info.IsCondBranch)
      EXPECT_TRUE(Info.IsBranch);
    if (Info.IsRet || Info.IsCall)
      EXPECT_TRUE(Info.IsBranch);
  }
  EXPECT_TRUE(opcodeInfo(Opcode::JCC).IsTerminator);
  EXPECT_FALSE(opcodeInfo(Opcode::CALL).IsTerminator);
  EXPECT_TRUE(opcodeInfo(Opcode::FENCE).IsSerializing);
}

TEST(Registers, Names) {
  EXPECT_STREQ(regName(R0), "r0");
  EXPECT_STREQ(regName(SP), "sp");
  EXPECT_STREQ(regName(FP), "fp");
  EXPECT_EQ(parseRegName("r13", 3), R13);
  EXPECT_EQ(parseRegName("sp", 2), SP);
  EXPECT_EQ(parseRegName("bogus", 5), NoReg);
}

/// Property: negateCond always flips the outcome, over every condition
/// code and every possible FLAGS value.
TEST(CondCode, NegationFlipsEverywhere) {
  for (unsigned CC = 0; CC != static_cast<unsigned>(CondCode::NumCondCodes);
       ++CC) {
    for (uint8_t F = 0; F < 16; ++F) {
      auto C = static_cast<CondCode>(CC);
      EXPECT_NE(evalCond(C, F), evalCond(negateCond(C), F))
          << "cc=" << condName(C) << " flags=" << unsigned(F);
    }
  }
}

TEST(CondCode, SemanticSpotChecks) {
  EXPECT_TRUE(evalCond(CondCode::EQ, FlagZ));
  EXPECT_FALSE(evalCond(CondCode::EQ, 0));
  EXPECT_TRUE(evalCond(CondCode::LT, FlagS)); // S != O
  EXPECT_FALSE(evalCond(CondCode::LT, FlagS | FlagO));
  EXPECT_TRUE(evalCond(CondCode::B, FlagC));
  EXPECT_TRUE(evalCond(CondCode::A, 0));
  EXPECT_FALSE(evalCond(CondCode::A, FlagC));
  EXPECT_FALSE(evalCond(CondCode::A, FlagZ));
}

TEST(CondCode, ParseNames) {
  CondCode CC;
  ASSERT_TRUE(parseCondName("ae", 2, CC));
  EXPECT_EQ(CC, CondCode::AE);
  EXPECT_FALSE(parseCondName("zz", 2, CC));
}

namespace {

/// Generates a random but well-formed instruction.
Instruction randomInst(RNG &R) {
  Instruction I;
  auto RandReg = [&] { return static_cast<Reg>(R.below(NumRegs)); };
  auto RandMem = [&] {
    MemRef M;
    if (R.chance(3, 4))
      M.Base = RandReg();
    if (R.chance(1, 2)) {
      M.Index = RandReg();
      M.Scale = static_cast<uint8_t>(1u << R.below(4));
    }
    M.Disp = static_cast<int64_t>(R.next());
    return M;
  };
  auto RandSize = [&] { return static_cast<uint8_t>(1u << R.below(4)); };
  switch (R.below(12)) {
  case 0:
    I = Instruction::mov(RandReg(), R.chance(1, 2)
                                        ? Operand::reg(RandReg())
                                        : Operand::imm(R.next()));
    break;
  case 1:
    I = Instruction::load(RandReg(), RandMem(), RandSize());
    break;
  case 2:
    I = Instruction::store(RandMem(), Operand::reg(RandReg()), RandSize());
    break;
  case 3:
    I = Instruction::alu(Opcode::ADD, RandReg(), Operand::imm(R.next()));
    break;
  case 4:
    I = Instruction::jcc(static_cast<CondCode>(
                             R.below(static_cast<uint64_t>(
                                 CondCode::NumCondCodes))),
                         static_cast<int32_t>(R.next()));
    break;
  case 5:
    I = Instruction::call(static_cast<int32_t>(R.next()));
    break;
  case 6:
    I = Instruction::ret();
    break;
  case 7:
    I = Instruction::intrinsicMem(IntrinsicID::AsanCheck, RandMem(),
                                  static_cast<int64_t>(R.next()));
    break;
  case 8:
    I = Instruction::ext(static_cast<int64_t>(R.below(7)));
    break;
  case 9: {
    I = Instruction(Opcode::CMOV);
    I.CC = static_cast<CondCode>(
        R.below(static_cast<uint64_t>(CondCode::NumCondCodes)));
    I.A = Operand::reg(RandReg());
    I.B = Operand::reg(RandReg());
    break;
  }
  case 10:
    I = Instruction::markerNop();
    break;
  default:
    I = Instruction::intrinsic(
        static_cast<IntrinsicID>(
            1 + R.below(static_cast<uint64_t>(IntrinsicID::NumIntrinsics) -
                        1)),
        static_cast<int64_t>(R.next()));
    break;
  }
  return I;
}

bool sameInst(const Instruction &A, const Instruction &B) {
  if (A.Op != B.Op || !(A.A == B.A) || !(B.B == A.B))
    return false;
  if (A.Op == Opcode::INTR)
    return A.Intr == B.Intr && A.IntrPayload == B.IntrPayload;
  return A.Size == B.Size && A.CC == B.CC;
}

} // namespace

/// Property: encode/decode is a lossless roundtrip for thousands of
/// random instructions, and the decoded length matches the encoding.
TEST(Encoding, RoundtripProperty) {
  RNG R(2024);
  for (int Iter = 0; Iter != 5000; ++Iter) {
    Instruction I = randomInst(R);
    std::vector<uint8_t> Bytes;
    unsigned Len = encode(I, Bytes);
    EXPECT_EQ(Len, Bytes.size());
    EXPECT_EQ(Len, encodedLength(I));
    auto D = decode(Bytes.data(), Bytes.size(), 0);
    ASSERT_TRUE(D) << D.message();
    EXPECT_EQ(D->Length, Len);
    EXPECT_TRUE(sameInst(I, D->I)) << printInst(I) << " vs "
                                   << printInst(D->I);
  }
}

/// Property: decoding any strict prefix of a valid encoding fails
/// cleanly (no crashes, no bogus success).
TEST(Encoding, TruncationAlwaysFails) {
  RNG R(7);
  for (int Iter = 0; Iter != 500; ++Iter) {
    Instruction I = randomInst(R);
    std::vector<uint8_t> Bytes;
    unsigned Len = encode(I, Bytes);
    for (unsigned Cut = 0; Cut < Len; ++Cut) {
      auto D = decode(Bytes.data(), Cut, 0);
      EXPECT_FALSE(D);
    }
  }
}

TEST(Encoding, RejectsUnknownOpcode) {
  uint8_t Bytes[8] = {0xee, 0, 0};
  EXPECT_FALSE(decode(Bytes, sizeof(Bytes), 0));
}

TEST(Encoding, RejectsBadRegister) {
  Instruction I = Instruction::mov(R0, Operand::reg(R1));
  std::vector<uint8_t> Bytes;
  encode(I, Bytes);
  Bytes[3] = 0x20; // register id out of range
  EXPECT_FALSE(decode(Bytes.data(), Bytes.size(), 0));
}

TEST(Encoding, RejectsBadScale) {
  Instruction I = Instruction::load(R0, MemRef{R1, R2, 4, 0});
  std::vector<uint8_t> Bytes;
  encode(I, Bytes);
  Bytes[6] = 3; // scale byte: must be 1/2/4/8
  EXPECT_FALSE(decode(Bytes.data(), Bytes.size(), 0));
}

TEST(Printer, ReadableOutput) {
  EXPECT_EQ(printInst(Instruction::movImm(R0, 42)), "mov r0, 42");
  EXPECT_EQ(printInst(Instruction::load(R1, MemRef{R2, R3, 8, -4}, 4)),
            "ld4 r1, [r2+r3*8-4]");
  EXPECT_EQ(printInst(Instruction::jcc(CondCode::LT, 8)), "j.lt 8");
  EXPECT_EQ(printInst(Instruction::ret()), "ret");
  Instruction C(Opcode::CMOV);
  C.CC = CondCode::NE;
  C.A = Operand::reg(R0);
  C.B = Operand::reg(R1);
  EXPECT_EQ(printInst(C), "cmov.ne r0, r1");
}

TEST(Printer, IntrinsicNames) {
  EXPECT_STREQ(intrinsicName(IntrinsicID::StartSim), "start_sim");
  EXPECT_STREQ(intrinsicName(IntrinsicID::MarkerCheck), "marker_check");
}
