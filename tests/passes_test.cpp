//===- tests/passes_test.cpp - Instrumentation-pass pipeline ----------------===//
//
// Unit tests for the src/passes/ layer: pipeline shapes and ordering
// invariants, RewriteContext state handoff between passes, per-pass
// statistics — and the refactor's anchor: PipelineBuilder output is
// byte-identical to the preserved pre-refactor monolithic rewriter
// (tests/reference/LegacyRewriter.cpp) on the rewriter_test fixtures.
//
//===----------------------------------------------------------------------===//

#include "Fixtures.h"
#include "TestUtil.h"
#include "disasm/Disassembler.h"
#include "passes/BaselineInstrumentPass.h"
#include "passes/CloneShadowFunctionsPass.h"
#include "passes/LayoutAndMetaPass.h"
#include "passes/MarkerPlacementPass.h"
#include "passes/PipelineBuilder.h"
#include "passes/RealCopyInstrumentPass.h"
#include "passes/ShadowCopyInstrumentPass.h"
#include "passes/TrampolinePass.h"
#include "reference/LegacyRewriter.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::ir;
using namespace teapot::passes;
using namespace teapot::testutil;

namespace {

/// All fixture binaries (the shared tests/Fixtures.h corpus),
/// compiled/assembled once.
std::vector<std::pair<std::string, obj::ObjectFile>> fixtureBinaries() {
  std::vector<std::pair<std::string, obj::ObjectFile>> Bins;
  Bins.emplace_back("v1", compileOrDie(V1Victim));
  Bins.emplace_back("cmov", assembleOrDie(CmovSafeVictim));
  Bins.emplace_back("fenced", compileOrDie(FencedVictim));
  Bins.emplace_back("cross-return", compileOrDie(CrossReturnVictim));
  Bins.emplace_back("massage", compileOrDie(MassageVictim));
  Bins.emplace_back("nested", compileOrDie(NestedVictim));
  lang::CompileOptions JT;
  JT.Switches = lang::SwitchLowering::JumpTable;
  Bins.emplace_back("jump-table", compileOrDie(SwitchProg, JT));
  return Bins;
}

/// The rewriter configurations both RewriteModes and the ablation
/// variants exercise.
std::vector<std::pair<std::string, core::RewriterOptions>>
allConfigurations() {
  std::vector<std::pair<std::string, core::RewriterOptions>> Cfgs;
  {
    core::RewriterOptions O;
    Cfgs.emplace_back("teapot", O);
  }
  {
    core::RewriterOptions O;
    O.EnableDift = false;
    Cfgs.emplace_back("teapot-asan-only", O);
  }
  {
    core::RewriterOptions O;
    O.EnableCoverage = false;
    Cfgs.emplace_back("teapot-no-coverage", O);
  }
  {
    core::RewriterOptions O;
    O.RestoreInterval = 5;
    Cfgs.emplace_back("teapot-restore-5", O);
  }
  {
    core::RewriterOptions O;
    O.Mode = core::RewriteMode::SpecFuzzBaseline;
    O.EnableDift = false;
    Cfgs.emplace_back("specfuzz-baseline", O);
  }
  return Cfgs;
}

ir::Module liftOrDie(const obj::ObjectFile &Bin) {
  auto M = disasm::disassemble(Bin);
  if (!M) {
    ADD_FAILURE() << "disassemble failed: " << M.message();
    abort();
  }
  return std::move(*M);
}

} // namespace

//===----------------------------------------------------------------------===//
// Pipeline shape
//===----------------------------------------------------------------------===//

TEST(PipelineBuilder, TeapotModeComposesTheSixStagePipeline) {
  auto Names = PipelineBuilder::teapot().passNames();
  std::vector<std::string> Expected = {
      "clone-shadow-functions", "create-trampolines",
      "place-markers",          "instrument-real-copy",
      "instrument-shadow-copy", "layout-and-meta"};
  EXPECT_EQ(Names, Expected);
}

TEST(PipelineBuilder, BaselineModeComposesTheSingleCopyPipeline) {
  core::RewriterOptions O;
  O.Mode = core::RewriteMode::SpecFuzzBaseline;
  auto Names = PipelineBuilder::forOptions(O).passNames();
  std::vector<std::string> Expected = {"create-trampolines",
                                       "instrument-baseline",
                                       "layout-and-meta"};
  EXPECT_EQ(Names, Expected);
}

TEST(PipelineBuilder, ForOptionsDispatchesOnMode) {
  core::RewriterOptions Teapot;
  EXPECT_EQ(PipelineBuilder::forOptions(Teapot).passNames(),
            PipelineBuilder::teapot().passNames());
  core::RewriterOptions Baseline;
  Baseline.Mode = core::RewriteMode::SpecFuzzBaseline;
  EXPECT_EQ(PipelineBuilder::forOptions(Baseline).size(), 3u);
}

//===----------------------------------------------------------------------===//
// Ordering invariants
//===----------------------------------------------------------------------===//

TEST(PassOrdering, ShadowPassesRequireCloneFirst) {
  // Each shadow-dependent pass must refuse to run on a module that was
  // never cloned.
  for (auto MakePipeline : {
           +[]() -> PipelineBuilder {
             return std::move(PipelineBuilder().addPass<MarkerPlacementPass>());
           },
           +[]() -> PipelineBuilder {
             return std::move(
                 PipelineBuilder().addPass<RealCopyInstrumentPass>());
           },
           +[]() -> PipelineBuilder {
             return std::move(
                 PipelineBuilder().addPass<ShadowCopyInstrumentPass>());
           },
       }) {
    ir::Module M = liftOrDie(compileOrDie(V1Victim));
    RewriteContext Ctx(M);
    PassManager PM = MakePipeline().build();
    Error Err = PM.run(Ctx);
    EXPECT_TRUE(static_cast<bool>(Err));
  }
}

TEST(PassOrdering, CloneMustRunFirstAndOnlyOnce) {
  ir::Module M = liftOrDie(compileOrDie(V1Victim));
  RewriteContext Ctx(M);
  PassManager PM = std::move(PipelineBuilder()
                                 .addPass<CloneShadowFunctionsPass>()
                                 .addPass<CloneShadowFunctionsPass>())
                       .build();
  Error Err = PM.run(Ctx);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.message().find("clone-shadow-functions"), std::string::npos);
}

TEST(PassOrdering, CloneRefusesToRunAfterTrampolines) {
  // Trampolines created before cloning would be duplicated into the
  // Shadow Copy with Real-Copy targets; the clone pass must reject the
  // composition instead of emitting a silently corrupt binary.
  ir::Module M = liftOrDie(compileOrDie(V1Victim));
  RewriteContext Ctx(M);
  PassManager PM = std::move(PipelineBuilder()
                                 .addPass<TrampolinePass>()
                                 .addPass<CloneShadowFunctionsPass>())
                       .build();
  Error Err = PM.run(Ctx);
  ASSERT_TRUE(static_cast<bool>(Err));
  EXPECT_NE(Err.message().find("create-trampolines"), std::string::npos);
}

TEST(PassOrdering, BaselinePassRefusesShadowedModules) {
  ir::Module M = liftOrDie(compileOrDie(V1Victim));
  RewriteContext Ctx(M);
  PassManager PM = std::move(PipelineBuilder()
                                 .addPass<CloneShadowFunctionsPass>()
                                 .addPass<BaselineInstrumentPass>())
                       .build();
  Error Err = PM.run(Ctx);
  EXPECT_TRUE(static_cast<bool>(Err));
}

//===----------------------------------------------------------------------===//
// RewriteContext state handoff
//===----------------------------------------------------------------------===//

TEST(RewriteContext, CloneAndTrampolineHandoff) {
  ir::Module M = liftOrDie(compileOrDie(V1Victim));
  RewriteContext Ctx(M);
  const uint32_t NumReal = Ctx.NumReal;

  PassManager PM = std::move(PipelineBuilder()
                                 .addPass<CloneShadowFunctionsPass>()
                                 .addPass<TrampolinePass>())
                       .build();
  Error Err = PM.run(Ctx);
  ASSERT_FALSE(static_cast<bool>(Err)) << Err.message();

  // Clone doubled the function count and linked shadow indices.
  ASSERT_EQ(M.Funcs.size(), 2 * size_t(NumReal));
  EXPECT_TRUE(Ctx.hasShadows());
  for (uint32_t F = 0; F != NumReal; ++F) {
    EXPECT_EQ(M.Funcs[F].ShadowIdx, NumReal + F);
    EXPECT_EQ(M.Funcs[NumReal + F].ShadowOf, F);
    EXPECT_TRUE(M.Funcs[NumReal + F].IsShadow);
    EXPECT_EQ(M.Funcs[NumReal + F].Name, M.Funcs[F].Name + "$spec");
  }

  // Trampolines: one per real-copy conditional branch, hosted in the
  // Shadow Copy, recorded consistently across the three indices.
  EXPECT_FALSE(Ctx.TrampolineRefs.empty());
  EXPECT_EQ(Ctx.TrampolineRefs.size(), Ctx.BranchIdOfBlock.size());
  EXPECT_EQ(Ctx.TrampolineRefs.size(), Ctx.TrampolineBlocks.size());
  for (const BlockRef &R : Ctx.TrampolineRefs) {
    EXPECT_GE(R.Func, NumReal) << "trampoline not in the Shadow Copy";
    EXPECT_TRUE(Ctx.isTrampoline(R.Func, R.Block));
    // Trampoline shape: JCC to the wrong taken target + JMP fallback.
    const BasicBlock &Tramp = M.block(R);
    ASSERT_EQ(Tramp.Insts.size(), 2u);
    EXPECT_EQ(Tramp.Insts[0].I.Op, isa::Opcode::JCC);
    EXPECT_EQ(Tramp.Insts[1].I.Op, isa::Opcode::JMP);
  }
  for (const auto &[Site, Id] : Ctx.BranchIdOfBlock) {
    EXPECT_LT(Site.first, NumReal) << "branch site must be a real block";
    ASSERT_LT(Id, Ctx.TrampolineRefs.size());
  }
}

TEST(RewriteContext, MarkerPlacementHandoff) {
  ir::Module M = liftOrDie(compileOrDie(CrossReturnVictim));
  RewriteContext Ctx(M);
  PassManager PM = std::move(PipelineBuilder()
                                 .addPass<CloneShadowFunctionsPass>()
                                 .addPass<TrampolinePass>()
                                 .addPass<MarkerPlacementPass>())
                       .build();
  Error Err = PM.run(Ctx);
  ASSERT_FALSE(static_cast<bool>(Err)) << Err.message();

  // The call in main creates at least one marker (the continuation).
  ASSERT_FALSE(Ctx.MarkerBlockRefs.empty());
  ASSERT_EQ(Ctx.MarkerBlockRefs.size(), Ctx.MarkerResumeRefs.size());
  ASSERT_EQ(Ctx.MarkerBlockRefs.size(), Ctx.MarkerIdOfBlock.size());
  for (size_t I = 0; I != Ctx.MarkerBlockRefs.size(); ++I) {
    const BlockRef &Real = Ctx.MarkerBlockRefs[I];
    const BlockRef &Resume = Ctx.MarkerResumeRefs[I];
    EXPECT_LT(Real.Func, Ctx.NumReal);
    EXPECT_GE(Resume.Func, Ctx.NumReal);
    // Resume is the marker block's shadow counterpart.
    EXPECT_EQ(Resume.Func, M.Funcs[Real.Func].ShadowIdx);
    EXPECT_EQ(Resume.Block, Real.Block);
    // Id table agrees with the ref vectors.
    auto It = Ctx.MarkerIdOfBlock.find({Real.Func, Real.Block});
    ASSERT_NE(It, Ctx.MarkerIdOfBlock.end());
    EXPECT_EQ(It->second, I);
  }
}

TEST(RewriteContext, InstrumentationConsumesIndicesAndAllocatesGuards) {
  ir::Module M = liftOrDie(compileOrDie(V1Victim));
  RewriteContext Ctx(M);
  PassManager PM = std::move(PipelineBuilder::teapot()).build();
  Error Err = PM.run(Ctx);
  ASSERT_FALSE(static_cast<bool>(Err)) << Err.message();

  // Guard id ranges ended up in the meta table.
  EXPECT_GT(Ctx.NumNormalGuards, 0u);
  EXPECT_GT(Ctx.NumSpecGuards, 0u);
  EXPECT_EQ(Ctx.Meta.NumNormalGuards, Ctx.NumNormalGuards);
  EXPECT_EQ(Ctx.Meta.NumSpecGuards, Ctx.NumSpecGuards);
  // Layout resolved every cross-pass ref into the meta table.
  EXPECT_EQ(Ctx.Meta.Trampolines.size(), Ctx.TrampolineRefs.size());
  EXPECT_EQ(Ctx.Meta.MarkerResume.size(), Ctx.MarkerResumeRefs.size());
  EXPECT_FALSE(Ctx.Binary.Metadata.find(runtime::MetaSectionName) ==
               Ctx.Binary.Metadata.end());
}

//===----------------------------------------------------------------------===//
// Per-pass statistics
//===----------------------------------------------------------------------===//

TEST(PassStatistics, RecordedPerPassAndCarriedOnResult) {
  auto RW = rewriteOrDie(compileOrDie(V1Victim));
  const passes::PassStatistics &Stats = RW.Stats;
  ASSERT_EQ(Stats.Passes.size(), 6u);
  EXPECT_EQ(Stats.Passes[0].Name, "clone-shadow-functions");
  EXPECT_EQ(Stats.Passes.back().Name, "layout-and-meta");

  // Clone doubles functions; trampolines add blocks; both instrument
  // passes add instructions.
  EXPECT_GT(Stats.Passes[0].FuncsAdded, 0u);
  EXPECT_GT(Stats.Passes[1].BlocksAdded, 0u);
  EXPECT_GT(Stats.Passes[1].Counters.at("trampolines.created"), 0u);
  EXPECT_GT(Stats.Passes[3].InstsAdded, 0u);
  EXPECT_GT(Stats.Passes[4].InstsAdded, 0u);
  for (const passes::PassStat &S : Stats.Passes)
    EXPECT_GE(S.Seconds, 0.0);

  // The dump renders one line per pass.
  std::string Dump = Stats.format();
  for (const passes::PassStat &S : Stats.Passes)
    EXPECT_NE(Dump.find(S.Name), std::string::npos) << Dump;
}

//===----------------------------------------------------------------------===//
// Byte-identity vs the pre-refactor rewriter
//===----------------------------------------------------------------------===//

TEST(Equivalence, PipelineMatchesLegacyRewriterByteForByte) {
  auto Bins = fixtureBinaries();
  auto Cfgs = allConfigurations();
  for (const auto &[BinName, Bin] : Bins) {
    for (const auto &[CfgName, Opts] : Cfgs) {
      SCOPED_TRACE(BinName + " / " + CfgName);
      auto Legacy = legacyref::legacyRewriteBinary(Bin, Opts);
      ASSERT_TRUE(Legacy) << Legacy.message();
      auto New = core::rewriteBinary(Bin, Opts);
      ASSERT_TRUE(New) << New.message();

      EXPECT_EQ(New->Binary.serialize(), Legacy->Binary.serialize())
          << "rewritten binary bytes diverge from the pre-refactor "
             "rewriter";
      EXPECT_EQ(New->Meta.serialize(), Legacy->Meta.serialize())
          << "metadata side tables diverge from the pre-refactor rewriter";
    }
  }
}

TEST(Equivalence, ExplicitPipelinesMatchRewriterOptionsDispatch) {
  // The named PipelineBuilder configurations and the RewriterOptions
  // driver are the same thing — a config is not a second implementation.
  obj::ObjectFile Bin = compileOrDie(V1Victim);

  auto ViaOptions = core::rewriteBinary(Bin, core::RewriterOptions());
  ASSERT_TRUE(ViaOptions) << ViaOptions.message();
  auto ViaPipeline = passes::runPipeline(Bin, PipelineBuilder::teapot());
  ASSERT_TRUE(ViaPipeline) << ViaPipeline.message();
  EXPECT_EQ(ViaOptions->Binary.serialize(), ViaPipeline->Binary.serialize());

  core::RewriterOptions BO;
  BO.Mode = core::RewriteMode::SpecFuzzBaseline;
  BO.EnableDift = false;
  auto BaseOptions = core::rewriteBinary(Bin, BO);
  ASSERT_TRUE(BaseOptions) << BaseOptions.message();
  auto BasePipeline =
      passes::runPipeline(Bin, PipelineBuilder::specFuzzBaseline(BO));
  ASSERT_TRUE(BasePipeline) << BasePipeline.message();
  EXPECT_EQ(BaseOptions->Binary.serialize(),
            BasePipeline->Binary.serialize());
}

TEST(Equivalence, EmptyModuleStillRejected) {
  ir::Module M;
  auto RW = core::rewriteModule(std::move(M), core::RewriterOptions());
  ASSERT_FALSE(RW);
  EXPECT_NE(RW.message().find("no functions"), std::string::npos);
}
