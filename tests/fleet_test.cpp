//===- tests/fleet_test.cpp - Scan-fleet orchestration tests ----------------===//
//
// The fleet contracts under test (docs/FLEET.md):
//
//   1. Thread invariance: FleetOptions::Threads is a throughput knob
//      with zero result effect — the same fleet run at 1 and 3 threads
//      produces byte-identical index documents and checkpoint
//      directories.
//   2. Run-twice determinism: two fleets constructed from identical
//      FleetOptions are byte-identical end to end.
//   3. Resume determinism: a fleet stopped at *any* round barrier and
//      resumed via openStateDir finishes byte-identical to the
//      uninterrupted run; resuming a finished fleet is an identity
//      operation over its artifacts.
//   4. Federation is live, not decorative: with single-worker campaigns
//      (where cross-worker imports are impossible) a federated fleet
//      adopts coverage-novel sibling inputs (Imports > 0) and its
//      corpora diverge from a FederateEvery=0 control; the
//      service-side filter never re-offers an already-imported hash.
//   5. The index and fleet-diff layers round-trip, query, and gate.
//
//===----------------------------------------------------------------------===//

#include "fuzz/CorpusShard.h"
#include "service/ScanService.h"
#include "support/File.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <dirent.h>
#include <sys/stat.h>

using namespace teapot;
using namespace teapot::service;

namespace {

//===----------------------------------------------------------------------===//
// Helpers
//===----------------------------------------------------------------------===//

/// Small two-family fleet configuration every scheduling test shares:
/// single-worker campaigns (so Imports can only come from federation),
/// tight sync interval (several epochs per budget → several rounds).
FleetOptions smallFleet(uint64_t Seed = 5) {
  FleetOptions FO;
  FO.Base = cantFail(ScanConfig::preset("teapot"));
  FO.Base.Campaign.Seed = Seed;
  FO.Base.Campaign.Workers = 1;
  FO.Base.Campaign.SyncInterval = 20;
  FO.Base.Campaign.MaxInputLen = 96;
  FO.IterationsPerTarget = 160;
  FO.SliceEpochs = 2;
  FO.FederateEvery = 1;
  FO.Threads = 1;
  return FO;
}

void addParserPair(ScanService &Svc) {
  cantFail(Svc.addTarget({"jsmn", "parsers", 0}));
  cantFail(Svc.addTarget({"base64", "parsers", 0}));
}

std::string freshDir(const char *Name) {
  std::string Dir = ::testing::TempDir();
  if (!Dir.empty() && Dir.back() != '/')
    Dir += '/';
  Dir += Name;
  // Tests re-run in the same TempDir; start from a clean slate.
  if (DIR *D = opendir(Dir.c_str())) {
    while (dirent *E = readdir(D)) {
      std::string N = E->d_name;
      if (N != "." && N != "..")
        std::remove((Dir + "/" + N).c_str());
    }
    closedir(D);
    rmdir(Dir.c_str());
  }
  return Dir;
}

/// Every file in \p Dir as "name\n<bytes>" blocks in sorted-name order —
/// the byte-level identity used by the resume and thread-invariance
/// checks (mirrors the CI job's `diff -r`).
std::string dirFingerprint(const std::string &Dir) {
  std::vector<std::string> Names;
  DIR *D = opendir(Dir.c_str());
  if (!D) {
    ADD_FAILURE() << "cannot open " << Dir;
    return "";
  }
  while (dirent *E = readdir(D)) {
    std::string N = E->d_name;
    if (N != "." && N != "..")
      Names.push_back(N);
  }
  closedir(D);
  std::sort(Names.begin(), Names.end());
  std::string Out;
  for (const std::string &N : Names) {
    Out += N;
    Out += '\n';
    Out += cantFail(support::readFile(Dir + "/" + N));
  }
  return Out;
}

/// Runs a fresh fleet with \p FO over the parser pair and returns its
/// index document.
std::string runParserFleet(FleetOptions FO) {
  ScanService Svc(std::move(FO));
  addParserPair(Svc);
  cantFail(Svc.run());
  return Svc.index().toJsonString();
}

runtime::GadgetReport gadget(uint64_t Site, runtime::Channel Ch,
                             runtime::Controllability Ctl) {
  return {Site, Ch, Ctl, 1, 2};
}

/// Synthetic two-target index for the query/diff tests (no scanning).
FleetIndex syntheticIndex() {
  FleetIndex Idx;
  FleetRecord A;
  A.Spec = "jsmn";
  A.Family = "parsers";
  A.Workload = "jsmn";
  A.Preset = "teapot";
  A.Engine = "interp";
  A.Seed = 5;
  A.Workers = 1;
  A.Iterations = 160;
  A.Rounds = 4;
  A.Done = true;
  A.Executions = 160;
  A.CorpusSize = 40;
  A.Gadgets.push_back(gadget(0x1000, runtime::Channel::Cache,
                             runtime::Controllability::User));
  A.Gadgets.push_back(gadget(0x2000, runtime::Channel::Port,
                             runtime::Controllability::Unknown));
  FleetRecord B = A;
  B.Spec = "base64";
  B.Workload = "base64";
  B.Seed = fuzz::Campaign::workerSeed(5, 1);
  B.Gadgets.clear();
  B.Gadgets.push_back(gadget(0x1000, runtime::Channel::Cache,
                             runtime::Controllability::User));
  Idx.Records = {A, B};
  return Idx;
}

//===----------------------------------------------------------------------===//
// Options and registration
//===----------------------------------------------------------------------===//

TEST(Fleet, OptionsValidate) {
  FleetOptions FO = smallFleet();
  FO.Threads = 0;
  Error T = FO.validate();
  ASSERT_TRUE(static_cast<bool>(T));
  EXPECT_NE(T.message().find("Threads"), std::string::npos);

  FO = smallFleet();
  FO.IterationsPerTarget = 0;
  Error E = FO.validate();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("IterationsPerTarget"), std::string::npos);
}

TEST(Fleet, DuplicateSpecsAreRejected) {
  ScanService Svc(smallFleet());
  ASSERT_FALSE(Svc.addTarget({"jsmn", "", 0}));
  Error E = Svc.addTarget({"jsmn", "other-family", 0});
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("duplicate"), std::string::npos);
}

TEST(Fleet, PerTargetSeedsAreDecorrelated) {
  // Target i runs under workerSeed(fleet seed, i) — sibling campaigns
  // must not retrace each other's trajectories.
  EXPECT_EQ(fuzz::Campaign::workerSeed(5, 0), 5u);
  EXPECT_NE(fuzz::Campaign::workerSeed(5, 1), 5u);
  EXPECT_NE(fuzz::Campaign::workerSeed(5, 1), fuzz::Campaign::workerSeed(5, 2));
}

//===----------------------------------------------------------------------===//
// Determinism: threads, run-twice
//===----------------------------------------------------------------------===//

TEST(Fleet, ThreadCountNeverAffectsResults) {
  FleetOptions F1 = smallFleet();
  F1.Threads = 1;
  FleetOptions F3 = smallFleet();
  F3.Threads = 3;

  std::string I1 = runParserFleet(F1);
  std::string I3 = runParserFleet(F3);
  EXPECT_EQ(I1, I3) << "Threads leaked into fleet results";

  // Run-twice: identical options → identical documents.
  EXPECT_EQ(runParserFleet(F1), I1);
}

TEST(Fleet, IndexCarriesScanAndFederationProvenance) {
  ScanService Svc(smallFleet());
  addParserPair(Svc);
  cantFail(Svc.addTarget({"proggen:11:4", "", 0}));
  cantFail(Svc.run());
  EXPECT_TRUE(Svc.finished());

  FleetIndex Idx = Svc.index();
  ASSERT_EQ(Idx.Records.size(), 3u);
  const FleetRecord *J = Idx.findTarget("jsmn");
  ASSERT_NE(J, nullptr);
  EXPECT_EQ(J->Family, "parsers");
  EXPECT_EQ(J->Seed, 5u);
  EXPECT_GE(J->Executions, 160u);
  EXPECT_TRUE(J->Done);
  EXPECT_GT(J->Rounds, 1u) << "slices did not interleave";
  EXPECT_GT(J->HostConcurrency, 0u) << "host provenance missing";

  // A family of one never federates.
  const FleetRecord *P = Idx.findTarget("proggen:11:4");
  ASSERT_NE(P, nullptr);
  EXPECT_EQ(P->Family, "proggen:11:4");
  EXPECT_EQ(P->FederatedIn, 0u);
  EXPECT_EQ(P->FederatedOut, 0u);
  EXPECT_EQ(P->Imports, 0u) << "single-worker campaign cannot import";
}

//===----------------------------------------------------------------------===//
// Federation
//===----------------------------------------------------------------------===//

TEST(Fleet, FederationIsLiveNotDecorative) {
  // Single-worker campaigns: the *only* way Imports can become nonzero
  // is a federated batch whose entries prove coverage-novel in the
  // receiving campaign.
  FleetOptions Fed = smallFleet();
  FleetOptions Ctl = smallFleet();
  Ctl.FederateEvery = 0;

  ScanService FedSvc(Fed), CtlSvc(Ctl);
  addParserPair(FedSvc);
  addParserPair(CtlSvc);
  cantFail(FedSvc.run());
  cantFail(CtlSvc.run());

  FleetIndex FedIdx = FedSvc.index(), CtlIdx = CtlSvc.index();
  uint64_t FedIn = 0, FedImports = 0;
  for (const FleetRecord &R : FedIdx.Records) {
    FedIn += R.FederatedIn;
    FedImports += R.Imports;
  }
  EXPECT_GT(FedIn, 0u) << "no corpus entries crossed campaigns";
  EXPECT_GT(FedImports, 0u)
      << "federated entries were never adopted as coverage-novel";

  for (const FleetRecord &R : CtlIdx.Records) {
    EXPECT_EQ(R.FederatedIn, 0u) << R.Spec;
    EXPECT_EQ(R.FederatedOut, 0u) << R.Spec;
    EXPECT_EQ(R.Imports, 0u)
        << R.Spec << ": imports without federation in a 1-worker campaign";
  }

  // Adoption changed the receiving campaigns' corpora/coverage.
  for (const FleetRecord &F : FedIdx.Records) {
    const FleetRecord *C = CtlIdx.findTarget(F.Spec);
    ASSERT_NE(C, nullptr);
    EXPECT_FALSE(F.CorpusSize == C->CorpusSize &&
                 F.NormalEdges == C->NormalEdges &&
                 F.SpecEdges == C->SpecEdges)
        << F.Spec << ": federation left corpus and coverage untouched";
  }
}

TEST(Fleet, FilterNovelDedupesAgainstCorpusAndHistory) {
  std::vector<uint8_t> A = {1, 2, 3}, B = {4, 5}, C = {6};
  std::unordered_set<uint64_t> Known = {fuzz::hashInput(A)};
  std::unordered_set<uint64_t> Imported;
  std::vector<uint64_t> Order;

  // A is already in the receiver's corpus; B and C are novel.
  auto First = ScanService::filterNovel({A, B, C}, Known, Imported, Order);
  ASSERT_EQ(First.size(), 2u);
  EXPECT_EQ(First[0], B);
  EXPECT_EQ(First[1], C);
  EXPECT_EQ(Order.size(), 2u);

  // A second offer of the same window is fully deduplicated by the
  // import history — nothing is ever re-imported.
  auto Second = ScanService::filterNovel({A, B, C}, Known, Imported, Order);
  EXPECT_TRUE(Second.empty());
  EXPECT_EQ(Order.size(), 2u);

  // Duplicates *inside* one window collapse too.
  std::vector<uint8_t> D = {7, 8};
  auto Third = ScanService::filterNovel({D, D}, Known, Imported, Order);
  EXPECT_EQ(Third.size(), 1u);
}

//===----------------------------------------------------------------------===//
// Persistence: checkpoint, resume, identity
//===----------------------------------------------------------------------===//

TEST(Fleet, ResumeAtEveryRoundBoundaryMatchesUninterrupted) {
  // The fleet analogue of persist_test's every-cutoff sweep: stop after
  // k rounds, reopen the state directory cold, run to completion, and
  // demand byte-identity with the uninterrupted run — for every k.
  std::string Full = freshDir("fleet_full");
  FleetOptions FO = smallFleet();
  FO.StateDir = Full;
  ScanService Ref(FO);
  addParserPair(Ref);
  cantFail(Ref.run());
  ASSERT_TRUE(Ref.finished());
  uint64_t Rounds = Ref.round();
  ASSERT_GT(Rounds, 2u) << "budget too small to exercise resume";
  std::string Want = dirFingerprint(Full);

  for (uint64_t K = 1; K < Rounds; ++K) {
    std::string Dir = freshDir("fleet_cut");
    FleetOptions Cut = smallFleet();
    Cut.StateDir = Dir;
    Cut.MaxRounds = K;
    {
      ScanService Svc(Cut);
      addParserPair(Svc);
      cantFail(Svc.run());
      ASSERT_FALSE(Svc.finished()) << "cutoff " << K << " did not cut";
    }
    // Cold resume: everything reconstructed from the manifest.
    auto Resumed = ScanService::openStateDir(Dir);
    ASSERT_TRUE(static_cast<bool>(Resumed)) << Resumed.message();
    cantFail((*Resumed)->run());
    EXPECT_TRUE((*Resumed)->finished());
    EXPECT_EQ(dirFingerprint(Dir), Want) << "diverged at cutoff " << K;
  }
}

TEST(Fleet, ResumingAFinishedFleetIsAnIdentity) {
  std::string Dir = freshDir("fleet_identity");
  FleetOptions FO = smallFleet();
  FO.StateDir = Dir;
  {
    ScanService Svc(FO);
    addParserPair(Svc);
    cantFail(Svc.run());
  }
  std::string Want = dirFingerprint(Dir);
  auto Resumed = ScanService::openStateDir(Dir);
  ASSERT_TRUE(static_cast<bool>(Resumed)) << Resumed.message();
  cantFail((*Resumed)->run());
  EXPECT_EQ(dirFingerprint(Dir), Want);
}

TEST(Fleet, RequestStopHonoredAtBarrierAndResumable) {
  // requestStop() before run(): the fleet stops after the first barrier
  // (one full round, federation + checkpoint included), and resuming
  // lands byte-identical with the uninterrupted run.
  std::string Full = freshDir("fleet_stop_full");
  FleetOptions FO = smallFleet();
  FO.StateDir = Full;
  {
    ScanService Svc(FO);
    addParserPair(Svc);
    cantFail(Svc.run());
  }
  std::string Want = dirFingerprint(Full);

  std::string Dir = freshDir("fleet_stop");
  FleetOptions Stop = smallFleet();
  Stop.StateDir = Dir;
  uint64_t StoppedAt;
  {
    ScanService Svc(Stop);
    addParserPair(Svc);
    Svc.artifacts().OnWrite = [&Svc](const std::string &Path, size_t) {
      // Fires during the first checkpoint — like SIGINT mid-run.
      if (Path.find("manifest") != std::string::npos)
        Svc.requestStop();
    };
    cantFail(Svc.run());
    EXPECT_FALSE(Svc.finished());
    StoppedAt = Svc.round();
  }
  EXPECT_GE(StoppedAt, 1u);

  auto Resumed = ScanService::openStateDir(Dir);
  ASSERT_TRUE(static_cast<bool>(Resumed)) << Resumed.message();
  EXPECT_EQ((*Resumed)->round(), StoppedAt);
  cantFail((*Resumed)->run());
  EXPECT_EQ(dirFingerprint(Dir), Want);
}

TEST(Fleet, LoadStateRejectsMismatchedOptionsAndTargets) {
  std::string Dir = freshDir("fleet_reject");
  FleetOptions FO = smallFleet();
  FO.StateDir = Dir;
  {
    ScanService Svc(FO);
    addParserPair(Svc);
    cantFail(Svc.run());
  }

  // Different result-relevant options (fleet seed) → diagnosed.
  {
    ScanService Svc(smallFleet(/*Seed=*/6));
    Error E = Svc.loadState(Dir);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_NE(E.message().find("options mismatch"), std::string::npos)
        << E.message();
  }

  // Different target list → diagnosed.
  {
    ScanService Svc(smallFleet());
    cantFail(Svc.addTarget({"url", "parsers", 0}));
    Error E = Svc.loadState(Dir);
    ASSERT_TRUE(static_cast<bool>(E));
    EXPECT_NE(E.message().find("target"), std::string::npos) << E.message();
  }

  // Threads is a session knob, not identity: a different thread count
  // loads fine.
  {
    FleetOptions F3 = smallFleet();
    F3.Threads = 3;
    ScanService Svc(F3);
    addParserPair(Svc);
    ASSERT_FALSE(Svc.loadState(Dir));
    EXPECT_TRUE(Svc.finished());
  }

  auto Missing = ScanService::openStateDir(freshDir("fleet_nowhere"));
  EXPECT_FALSE(static_cast<bool>(Missing));
}

//===----------------------------------------------------------------------===//
// Index: round-trip and queries
//===----------------------------------------------------------------------===//

TEST(Fleet, IndexRoundTripsByteIdentically) {
  FleetIndex Idx = syntheticIndex();
  std::string Doc = Idx.toJsonString();
  FleetIndex Back = cantFail(FleetIndex::fromJsonString(Doc));
  EXPECT_TRUE(Idx == Back);
  // Canonical: dump ∘ parse ∘ dump is stable even though the families
  // rollup is recomputed on every dump.
  EXPECT_EQ(Back.toJsonString(), Doc);
  EXPECT_NE(Doc.find("\"families\""), std::string::npos);
}

TEST(Fleet, IndexFromJsonDiagnosesBadDocuments) {
  auto E1 = FleetIndex::fromJsonString("not json");
  EXPECT_FALSE(static_cast<bool>(E1));

  auto E2 = FleetIndex::fromJsonString("{\"schema\": \"bogus.v9\"}");
  ASSERT_FALSE(static_cast<bool>(E2));
  EXPECT_NE(E2.message().find("schema"), std::string::npos);

  // A record missing a required field names the field.
  auto E3 = FleetIndex::fromJsonString(
      "{\"schema\": \"teapot.fleetindex.v1\", \"targets\": [{\"spec\": "
      "\"x\"}]}");
  EXPECT_FALSE(static_cast<bool>(E3));
}

TEST(Fleet, TopGadgetsRanksByTargetCount) {
  FleetIndex Idx = syntheticIndex();
  auto Top = Idx.topGadgets();
  ASSERT_EQ(Top.size(), 2u);
  // 0x1000/Cache/User is reported by both targets → first.
  EXPECT_EQ(Top[0].Gadget.Site, 0x1000u);
  ASSERT_EQ(Top[0].Targets.size(), 2u);
  EXPECT_EQ(Top[0].Targets[0], "jsmn");
  EXPECT_EQ(Top[0].Targets[1], "base64");
  EXPECT_EQ(Top[1].Gadget.Site, 0x2000u);
  EXPECT_EQ(Idx.topGadgets(1).size(), 1u);
}

TEST(Fleet, RecordRoundTripsThroughScanSynthesis) {
  // toScan() must carry everything diffScans consumes so fleet diffing
  // rides the scan-diff machinery.
  FleetRecord R = syntheticIndex().Records[0];
  R.InjectedSites = {0x1000};
  ScanResult S = R.toScan();
  EXPECT_EQ(S.Workload, R.Workload);
  EXPECT_EQ(S.Seed, R.Seed);
  EXPECT_EQ(S.Executions, R.Executions);
  EXPECT_EQ(S.Gadgets.size(), R.Gadgets.size());
  EXPECT_EQ(S.InjectedSites, R.InjectedSites);
  EXPECT_EQ(S.WallSeconds, 0.0);
}

//===----------------------------------------------------------------------===//
// Fleet diff
//===----------------------------------------------------------------------===//

TEST(Fleet, DiffIsCleanOnIdenticalFleets) {
  FleetIndex Idx = syntheticIndex();
  FleetDiff D = diffFleets(Idx, Idx);
  EXPECT_FALSE(D.hasRegressions());
  EXPECT_EQ(D.Targets.size(), 2u);
  EXPECT_TRUE(D.AddedTargets.empty());
  EXPECT_TRUE(D.RemovedTargets.empty());
  EXPECT_NE(D.describe().find("no regressions"), std::string::npos);
}

TEST(Fleet, DiffFlagsLostGadgetsAsRegressions) {
  FleetIndex Before = syntheticIndex();
  FleetIndex After = Before;
  After.Records[0].Gadgets.pop_back(); // lose 0x2000 on jsmn
  FleetDiff D = diffFleets(Before, After);
  EXPECT_TRUE(D.hasRegressions());
  std::string Text = D.describe();
  EXPECT_NE(Text.find("REGRESSIONS"), std::string::npos);

  json::Value V = D.toJson();
  EXPECT_EQ(V.find("schema")->asString(), "teapot.fleetdiff.v1");
}

TEST(Fleet, DiffTreatsRemovedGadgetTargetAsRegression) {
  FleetIndex Before = syntheticIndex();
  FleetIndex After = Before;
  After.Records.erase(After.Records.begin()); // drop jsmn (had gadgets)
  FleetDiff D = diffFleets(Before, After);
  ASSERT_EQ(D.RemovedTargets.size(), 1u);
  EXPECT_EQ(D.RemovedTargets[0], "jsmn");
  EXPECT_EQ(D.RemovedWithGadgets, D.RemovedTargets);
  EXPECT_TRUE(D.hasRegressions());

  // A gadget-free target disappearing is reported but not a regression.
  FleetIndex After2 = Before;
  After2.Records[1].Gadgets.clear();
  FleetDiff D2 = diffFleets(After2, Before);
  EXPECT_FALSE(D2.hasRegressions());
  After2.Records.pop_back();
  FleetDiff D3 = diffFleets(Before, After2);
  // base64 still had a gadget in Before → regression.
  EXPECT_TRUE(D3.hasRegressions());
}

TEST(Fleet, DiffMatchesTargetsBySpecAndSeed) {
  // A reseeded target is remove+add, never a comparable pair.
  FleetIndex Before = syntheticIndex();
  FleetIndex After = Before;
  After.Records[1].Seed += 1;
  FleetDiff D = diffFleets(Before, After);
  EXPECT_EQ(D.Targets.size(), 1u);
  ASSERT_EQ(D.RemovedTargets.size(), 1u);
  EXPECT_EQ(D.RemovedTargets[0], "base64");
  ASSERT_EQ(D.AddedTargets.size(), 1u);
  EXPECT_EQ(D.AddedTargets[0], "base64");
}

TEST(Fleet, DiffInjectedOnlyNeverGoesVacuous) {
  // InjectedOnly applies per target only where the baseline has
  // injection ground truth; targets without it keep full accounting.
  FleetIndex Before = syntheticIndex();
  Before.Records[0].InjectedSites = {0x1000};
  FleetIndex After = Before;
  // jsmn loses 0x2000 (not an injected site) → filtered by the gate.
  After.Records[0].Gadgets.pop_back();
  // base64 (no injected sites) loses its only gadget → still counts.
  After.Records[1].Gadgets.clear();
  FleetDiff D = diffFleets(Before, After, {/*InjectedOnly=*/true});
  EXPECT_TRUE(D.InjectedOnly);
  ASSERT_EQ(D.Targets.size(), 2u);
  EXPECT_FALSE(D.Targets[0].Diff.hasRegressions())
      << "non-injected loss leaked through the injected-only gate";
  EXPECT_TRUE(D.Targets[1].Diff.hasRegressions())
      << "the gate went vacuous on a target without ground truth";
}

} // namespace
