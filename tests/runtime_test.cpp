//===- tests/runtime_test.cpp - Runtime units: shadow layout, DIFT, ---------===//
//===- coverage, reports, meta tables ---------------------------------------===//

#include "core/TagProgramBuilder.h"
#include "runtime/Coverage.h"
#include "runtime/Dift.h"
#include "runtime/MetaTable.h"
#include "runtime/Report.h"
#include "runtime/ShadowLayout.h"
#include "support/RNG.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::isa;
using namespace teapot::runtime;

//===----------------------------------------------------------------------===//
// Tables 1 and 2: shadow layout arithmetic.
//===----------------------------------------------------------------------===//

TEST(ShadowLayout, Table1AsanRegions) {
  // ASan mapping: shadow = (addr >> 3) + 0x7fff8000.
  EXPECT_EQ(asanShadowAddr(0), AsanShadowOffset);
  EXPECT_EQ(asanShadowAddr(8), AsanShadowOffset + 1);
  // Shadow of both user regions stays outside the user regions.
  for (uint64_t A : {uint64_t(0), obj::LowMemEnd, obj::HighMemStart,
                     obj::HighMemEnd, obj::HeapBase, obj::StackTop}) {
    uint64_t S = asanShadowAddr(A);
    EXPECT_FALSE(obj::isUserAddress(S)) << "shadow of " << std::hex << A;
  }
}

TEST(ShadowLayout, Table2TagRegions) {
  // Tag shadow = addr XOR (1 << 45), byte-to-byte.
  EXPECT_EQ(tagShadowAddr(obj::HighMemStart), HighTagStart);
  EXPECT_EQ(tagShadowAddr(obj::HighMemEnd), HighTagEnd);
  EXPECT_EQ(tagShadowAddr(obj::LowMemStart), LowTagStart);
  EXPECT_EQ(tagShadowAddr(obj::LowMemEnd), LowTagEnd);
  // The translation is an involution.
  RNG R(3);
  for (int I = 0; I != 1000; ++I) {
    uint64_t A = R.next() & 0x7fffffffffffULL;
    EXPECT_EQ(tagShadowAddr(tagShadowAddr(A)), A);
  }
  // Tag regions never overlap user regions.
  for (uint64_t A : {uint64_t(0), obj::LowMemEnd, obj::HighMemStart,
                     obj::HighMemEnd}) {
    EXPECT_FALSE(obj::isUserAddress(tagShadowAddr(A)));
  }
}

//===----------------------------------------------------------------------===//
// TagEngine: per-instruction transfer rules.
//===----------------------------------------------------------------------===//

namespace {

struct TagFixture : ::testing::Test {
  vm::Machine M;
  TagEngine T{M};
};

} // namespace

TEST_F(TagFixture, MovAndAluPropagation) {
  T.RegTags[R1] = TagUser;
  T.transfer(Instruction::mov(R0, Operand::reg(R1)));
  EXPECT_EQ(T.RegTags[R0], TagUser);
  T.transfer(Instruction::mov(R0, Operand::imm(5)));
  EXPECT_EQ(T.RegTags[R0], 0);
  T.transfer(Instruction::alu(Opcode::ADD, R0, Operand::reg(R1)));
  EXPECT_EQ(T.RegTags[R0], TagUser);
  EXPECT_EQ(T.FlagsTag, TagUser);
}

TEST_F(TagFixture, XorSelfClearsTaint) {
  T.RegTags[R2] = TagUser | TagMassage;
  T.transfer(Instruction::alu(Opcode::XOR, R2, Operand::reg(R2)));
  EXPECT_EQ(T.RegTags[R2], 0);
  T.RegTags[R3] = TagUser;
  T.transfer(Instruction::alu(Opcode::SUB, R3, Operand::reg(R3)));
  EXPECT_EQ(T.RegTags[R3], 0);
}

TEST_F(TagFixture, MemoryRoundtrip) {
  M.C.R[R1] = 0x5000;
  T.RegTags[R0] = TagUser;
  T.transfer(
      Instruction::store(MemRef{R1, NoReg, 1, 0}, Operand::reg(R0), 8));
  EXPECT_EQ(T.memTag(0x5000, 8), TagUser);
  T.RegTags[R2] = 0;
  T.transfer(Instruction::load(R2, MemRef{R1, NoReg, 1, 4}, 4));
  EXPECT_EQ(T.RegTags[R2], TagUser);
  // Bytes outside the store are clean.
  EXPECT_EQ(T.memTag(0x5008, 8), 0);
}

TEST_F(TagFixture, PendingLoadExtraConsumedOnce) {
  M.C.R[R1] = 0x6000;
  T.PendingLoadExtra = TagSecretUser;
  T.transfer(Instruction::load(R0, MemRef{R1, NoReg, 1, 0}, 8));
  EXPECT_EQ(T.RegTags[R0], TagSecretUser);
  T.transfer(Instruction::load(R2, MemRef{R1, NoReg, 1, 0}, 8));
  EXPECT_EQ(T.RegTags[R2], 0) << "extra tag must apply to one load only";
}

TEST_F(TagFixture, CompareTaintsFlagsThenSetAndCmov) {
  T.RegTags[R0] = TagSecretUser;
  T.transfer(Instruction::cmp(R0, Operand::imm(3)));
  EXPECT_EQ(T.FlagsTag, TagSecretUser);
  Instruction S(Opcode::SET);
  S.A = Operand::reg(R4);
  T.transfer(S);
  EXPECT_EQ(T.RegTags[R4], TagSecretUser);
  Instruction C(Opcode::CMOV);
  C.A = Operand::reg(R5);
  C.B = Operand::reg(R6);
  T.transfer(C);
  EXPECT_EQ(T.RegTags[R5], TagSecretUser);
}

TEST_F(TagFixture, PushPopThroughStack) {
  M.C.R[SP] = 0x7fff'ffff'e000ULL;
  T.RegTags[R7] = TagMassage;
  Instruction P(Opcode::PUSH);
  P.A = Operand::reg(R7);
  T.transfer(P);
  M.C.R[SP] -= 8; // the machine would do this
  Instruction Q(Opcode::POP);
  Q.A = Operand::reg(R8);
  T.transfer(Q);
  EXPECT_EQ(T.RegTags[R8], TagMassage);
}

TEST_F(TagFixture, UndoLogRollsBack) {
  T.Logging = true;
  M.C.R[R1] = 0x9000;
  T.RegTags[R0] = TagUser;
  size_t Mark = T.Log.size();
  T.transfer(
      Instruction::store(MemRef{R1, NoReg, 1, 0}, Operand::reg(R0), 8));
  EXPECT_EQ(T.memTag(0x9000, 8), TagUser);
  T.undoTo(Mark);
  EXPECT_EQ(T.memTag(0x9000, 8), 0);
}

TEST_F(TagFixture, ExtClearsReturnRegister) {
  T.RegTags[R0] = TagUser;
  T.transfer(Instruction::ext(4));
  EXPECT_EQ(T.RegTags[R0], 0);
}

//===----------------------------------------------------------------------===//
// TagProgramBuilder: the Real-Copy per-block transfer must agree with
// the synchronous per-instruction engine on composable blocks.
//===----------------------------------------------------------------------===//

namespace {

/// Random straight-line block of register-only operations (the domain
/// where the block program must be *exact*).
ir::BasicBlock randomRegBlock(RNG &R) {
  ir::BasicBlock B;
  unsigned N = 1 + static_cast<unsigned>(R.below(12));
  for (unsigned I = 0; I != N; ++I) {
    auto RandReg = [&] { return static_cast<Reg>(R.below(R13 + 1)); };
    Instruction In;
    switch (R.below(4)) {
    case 0:
      In = Instruction::mov(RandReg(), R.chance(1, 2)
                                           ? Operand::reg(RandReg())
                                           : Operand::imm(7));
      break;
    case 1:
      In = Instruction::alu(Opcode::ADD, RandReg(), Operand::reg(RandReg()));
      break;
    case 2:
      In = Instruction::alu(Opcode::XOR, RandReg(), Operand::reg(RandReg()));
      break;
    default: {
      In = Instruction(Opcode::LEA);
      In.A = Operand::reg(RandReg());
      In.B = Operand::mem(MemRef{RandReg(), NoReg, 1, 8});
      break;
    }
    }
    B.Insts.emplace_back(In);
  }
  return B;
}

} // namespace

TEST(TagProgramBuilder, MatchesPerInstOnRegisterBlocks) {
  RNG R(99);
  for (int Iter = 0; Iter != 300; ++Iter) {
    ir::BasicBlock B = randomRegBlock(R);
    ir::TagProgram P = core::buildBlockTagProgram(B).Program;

    vm::Machine M1, M2;
    TagEngine Ref(M1), Blk(M2);
    for (unsigned I = 0; I != NumRegs; ++I) {
      uint8_t Tag = static_cast<uint8_t>(R.below(4));
      Ref.RegTags[I] = Tag;
      Blk.RegTags[I] = Tag;
    }
    for (const ir::Inst &In : B.Insts)
      Ref.transfer(In.I);
    Blk.runProgram(P);
    for (unsigned I = 0; I != NumRegs; ++I)
      EXPECT_EQ(Ref.RegTags[I], Blk.RegTags[I])
          << "iteration " << Iter << " register "
          << regName(static_cast<Reg>(I));
  }
}

TEST(TagProgramBuilder, StackCompensation) {
  // push r1; pop r2 inside one block: the block program must move r1's
  // tag into r2 even though it evaluates at the block end where SP is
  // back to its entry value.
  ir::BasicBlock B;
  Instruction P(Opcode::PUSH);
  P.A = Operand::reg(R1);
  Instruction Q(Opcode::POP);
  Q.A = Operand::reg(R2);
  B.Insts.emplace_back(P);
  B.Insts.emplace_back(Q);
  ir::TagProgram Prog = core::buildBlockTagProgram(B).Program;

  vm::Machine M;
  TagEngine T(M);
  M.C.R[SP] = 0x7fff'ffff'e000ULL; // block-end SP == entry SP
  T.RegTags[R1] = TagUser;
  T.runProgram(Prog);
  EXPECT_EQ(T.RegTags[R2], TagUser);
}

TEST(TagProgramBuilder, EmptyForNoEffects) {
  ir::BasicBlock B;
  B.Insts.emplace_back(Instruction::nop());
  B.Insts.emplace_back(Instruction::jmp(0));
  EXPECT_TRUE(core::buildBlockTagProgram(B).Program.empty());
}

//===----------------------------------------------------------------------===//
// Coverage
//===----------------------------------------------------------------------===//

TEST(Coverage, NormalCountsSaturate) {
  Coverage C;
  C.init(4, 4);
  for (int I = 0; I != 300; ++I)
    C.hitNormal(1);
  EXPECT_EQ(C.normalMap()[1], 0xff);
  EXPECT_EQ(C.normalCovered(), 1u);
}

TEST(Coverage, LazyFlushMergesOnRollback) {
  Coverage C;
  C.init(2, 8);
  size_t Outer = C.lazyMark();
  C.noteSpecLazy(3);
  size_t Inner = C.lazyMark();
  C.noteSpecLazy(5);
  // Inner rollback flushes only the inner segment...
  C.flushLazyFrom(Inner);
  EXPECT_EQ(C.specMap()[5], 1);
  EXPECT_EQ(C.specMap()[3], 0);
  // ...outer rollback flushes the rest.
  C.flushLazyFrom(Outer);
  EXPECT_EQ(C.specMap()[3], 1);
  EXPECT_EQ(C.specCovered(), 2u);
}

TEST(Coverage, OutOfRangeGuardIgnored) {
  Coverage C;
  C.init(2, 2);
  C.hitNormal(99);
  C.hitSpec(99);
  EXPECT_EQ(C.normalCovered(), 0u);
}

//===----------------------------------------------------------------------===//
// Reports
//===----------------------------------------------------------------------===//

TEST(ReportSink, DeduplicatesBySiteChannelCtrl) {
  ReportSink S;
  GadgetReport R;
  R.Site = 0x401234;
  R.Chan = Channel::MDS;
  R.Ctrl = Controllability::User;
  EXPECT_TRUE(S.report(R));
  EXPECT_FALSE(S.report(R)); // duplicate
  R.Chan = Channel::Cache;
  EXPECT_TRUE(S.report(R)); // different channel = new gadget
  R.Ctrl = Controllability::Massage;
  EXPECT_TRUE(S.report(R));
  EXPECT_EQ(S.unique().size(), 3u);
  EXPECT_EQ(S.totalHits(), 4u);
  EXPECT_EQ(S.count(Controllability::User, Channel::MDS), 1u);
  EXPECT_EQ(S.count(Controllability::Massage, Channel::Cache), 1u);
  EXPECT_EQ(S.count(Controllability::Massage, Channel::Port), 0u);
}

TEST(ReportSink, UniqueIsKeyOrderedRegardlessOfDiscoveryOrder) {
  // unique() returns (Site, Chan, Ctrl) key order — the documented API
  // contract that makes JSON output and GadgetSink merges diff-able.
  ReportSink S;
  auto Add = [&](uint64_t Site, Channel C, Controllability Ct) {
    GadgetReport R;
    R.Site = Site;
    R.Chan = C;
    R.Ctrl = Ct;
    S.report(R);
  };
  Add(0x500, Channel::Port, Controllability::User);
  Add(0x100, Channel::Cache, Controllability::Massage);
  Add(0x100, Channel::Cache, Controllability::User);
  Add(0x300, Channel::MDS, Controllability::User);
  Add(0x100, Channel::MDS, Controllability::User);

  const auto &U = S.unique();
  ASSERT_EQ(U.size(), 5u);
  for (size_t I = 1; I < U.size(); ++I)
    EXPECT_LT(ReportSink::keyOf(U[I - 1]), ReportSink::keyOf(U[I]));
  EXPECT_EQ(U.front().Site, 0x100u);
  EXPECT_EQ(U.back().Site, 0x500u);

  // A second sink fed in a different order yields the same sequence.
  ReportSink S2;
  for (auto It = U.rbegin(); It != U.rend(); ++It)
    S2.report(*It);
  EXPECT_EQ(S2.unique(), U);
}

TEST(Report, NameEnumRoundTrips) {
  for (Channel C : {Channel::MDS, Channel::Cache, Channel::Port,
                    Channel::Asan})
    EXPECT_EQ(cantFail(channelFromName(channelName(C))), C);
  for (Controllability C : {Controllability::User, Controllability::Massage,
                            Controllability::Unknown})
    EXPECT_EQ(cantFail(controllabilityFromName(controllabilityName(C))), C);

  auto BadChan = channelFromName("cache"); // case-sensitive, like printing
  ASSERT_FALSE(static_cast<bool>(BadChan));
  EXPECT_NE(BadChan.message().find("unknown channel"), std::string::npos);
  EXPECT_FALSE(static_cast<bool>(controllabilityFromName("root")));
}

TEST(ReportSink, CallbackFiresOnNewOnly) {
  ReportSink S;
  int Calls = 0;
  S.OnNewGadget = [&](const GadgetReport &) { ++Calls; };
  GadgetReport R;
  R.Site = 1;
  S.report(R);
  S.report(R);
  EXPECT_EQ(Calls, 1);
}

TEST(Report, Describe) {
  GadgetReport R;
  R.Site = 0x42;
  R.Chan = Channel::Port;
  R.Ctrl = Controllability::Massage;
  EXPECT_NE(R.describe().find("Massage-Port"), std::string::npos);
  EXPECT_NE(R.describe().find("0x42"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// MetaTable
//===----------------------------------------------------------------------===//

TEST(MetaTable, SerializeRoundtrip) {
  MetaTable M;
  M.RealTextStart = 0x401000;
  M.RealTextEnd = 0x402000;
  M.ShadowTextStart = 0x402000;
  M.ShadowTextEnd = 0x404000;
  M.SimFlagAddr = obj::SimFlagAddr;
  M.Trampolines = {0x402100, 0x402200};
  M.FuncMap[0x401000] = 0x402000;
  M.MarkerSites = {0x401500, 0x401600};
  M.MarkerResume = {0x403500, 0x403600};
  M.NumNormalGuards = 7;
  M.NumSpecGuards = 9;
  ir::TagMicroOp Op;
  Op.K = ir::TagMicroOp::LoadTmp;
  Op.Dst = 3;
  Op.Size = 4;
  Op.Mask = 0x30005;
  Op.Mem = MemRef{FP, NoReg, 1, -16};
  M.TagPrograms.push_back({Op});

  auto Bytes = M.serialize();
  auto Back = MetaTable::deserialize(Bytes);
  ASSERT_TRUE(Back) << Back.message();
  EXPECT_EQ(Back->RealTextEnd, 0x402000u);
  EXPECT_EQ(Back->Trampolines, M.Trampolines);
  EXPECT_EQ(Back->FuncMap.at(0x401000), 0x402000u);
  EXPECT_EQ(Back->MarkerSites.count(0x401600), 1u);
  EXPECT_EQ(Back->MarkerResume[1], 0x403600u);
  EXPECT_EQ(Back->NumSpecGuards, 9u);
  ASSERT_EQ(Back->TagPrograms.size(), 1u);
  EXPECT_EQ(Back->TagPrograms[0][0].K, ir::TagMicroOp::LoadTmp);
  EXPECT_EQ(Back->TagPrograms[0][0].Mask, 0x30005u);
  EXPECT_EQ(Back->TagPrograms[0][0].Mem.Disp, -16);
  EXPECT_TRUE(Back->inShadowText(0x403000));
  EXPECT_FALSE(Back->inShadowText(0x401500));
  EXPECT_TRUE(Back->inRealText(0x401500));
}

TEST(MetaTable, RejectsTruncation) {
  MetaTable M;
  M.Trampolines = {1, 2, 3};
  auto Bytes = M.serialize();
  for (size_t Cut = 0; Cut < Bytes.size(); Cut += 7) {
    std::vector<uint8_t> T(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(MetaTable::deserialize(T));
  }
}
