//===- tests/obj_test.cpp - TBF object format ------------------------------===//

#include "obj/Layout.h"
#include "obj/ObjectFile.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::obj;

namespace {

ObjectFile sampleObject() {
  ObjectFile O;
  O.Entry = 0x401000;
  O.Sections.push_back({".text", SectionKind::Code, 0x401000,
                        {1, 2, 3, 4}, 0});
  O.Sections.push_back({".data", SectionKind::Data, 0xa00000, {9, 9}, 0});
  O.Sections.push_back({".bss", SectionKind::Bss, 0xa01000, {}, 128});
  O.Symbols.push_back({"main", SymbolKind::Function, 0x401000, 4, true});
  O.Symbols.push_back({"g", SymbolKind::Object, 0xa00000, 2, false});
  O.Relocs.push_back({RelocKind::Abs64, 1, 0, "main", 8});
  O.Metadata["note"] = {0xde, 0xad};
  return O;
}

} // namespace

TEST(ObjectFile, SerializeRoundtrip) {
  ObjectFile O = sampleObject();
  auto Bytes = O.serialize();
  auto BackOrErr = ObjectFile::deserialize(Bytes);
  ASSERT_TRUE(BackOrErr) << BackOrErr.message();
  const ObjectFile &B = *BackOrErr;
  EXPECT_EQ(B.Entry, O.Entry);
  ASSERT_EQ(B.Sections.size(), 3u);
  EXPECT_EQ(B.Sections[0].Bytes, O.Sections[0].Bytes);
  EXPECT_EQ(B.Sections[2].BssSize, 128u);
  ASSERT_EQ(B.Symbols.size(), 2u);
  EXPECT_EQ(B.Symbols[0].Name, "main");
  EXPECT_TRUE(B.Symbols[0].Global);
  ASSERT_EQ(B.Relocs.size(), 1u);
  EXPECT_EQ(B.Relocs[0].Addend, 8);
  ASSERT_EQ(B.Metadata.count("note"), 1u);
  EXPECT_EQ(B.Metadata.at("note").size(), 2u);
}

TEST(ObjectFile, RejectsBadMagic) {
  std::vector<uint8_t> Bytes = {'X', 'X', 'X', 'X', 0, 0};
  EXPECT_FALSE(ObjectFile::deserialize(Bytes));
}

TEST(ObjectFile, RejectsTruncation) {
  auto Bytes = sampleObject().serialize();
  for (size_t Cut : {4ul, 10ul, Bytes.size() / 2, Bytes.size() - 1}) {
    std::vector<uint8_t> T(Bytes.begin(), Bytes.begin() + Cut);
    EXPECT_FALSE(ObjectFile::deserialize(T)) << "cut at " << Cut;
  }
}

TEST(ObjectFile, Queries) {
  ObjectFile O = sampleObject();
  EXPECT_NE(O.findSection(".text"), nullptr);
  EXPECT_EQ(O.findSection(".nope"), nullptr);
  EXPECT_EQ(O.sectionContaining(0x401002)->Name, ".text");
  EXPECT_EQ(O.sectionContaining(0xa01010)->Name, ".bss");
  EXPECT_EQ(O.sectionContaining(0x1), nullptr);
  EXPECT_NE(O.findSymbol("main"), nullptr);
  EXPECT_EQ(O.findSymbol("zzz"), nullptr);
}

TEST(ObjectFile, StripRemovesSymbolsAndRelocs) {
  ObjectFile O = sampleObject();
  O.strip();
  EXPECT_TRUE(O.Symbols.empty());
  EXPECT_TRUE(O.Relocs.empty());
  EXPECT_EQ(O.Sections.size(), 3u); // sections survive
  EXPECT_EQ(O.Metadata.size(), 1u); // metadata survives
}

TEST(Layout, UserAddressRegions) {
  // Table 2 user-accessible regions.
  EXPECT_TRUE(isUserAddress(0x0));
  EXPECT_TRUE(isUserAddress(LowMemEnd));
  EXPECT_FALSE(isUserAddress(LowMemEnd + 1));
  EXPECT_TRUE(isUserAddress(HighMemStart));
  EXPECT_TRUE(isUserAddress(HighMemEnd));
  EXPECT_FALSE(isUserAddress(HighMemEnd + 1));
  EXPECT_FALSE(isUserAddress(0x2000'0000'0000ULL)); // LowTag region
  EXPECT_FALSE(isUserAddress(0x4000'0000'0000ULL)); // HighTag region
}

TEST(Layout, StaticImageFitsLowMem) {
  EXPECT_LT(TextBase, RodataBase);
  EXPECT_LT(RodataBase, DataBase);
  EXPECT_LE(DataBase, LowMemEnd);
  EXPECT_TRUE(isUserAddress(SimFlagAddr));
}

TEST(Layout, DynamicRegionsInHighMem) {
  EXPECT_GE(HeapBase, HighMemStart);
  EXPECT_LE(StackTop, HighMemEnd);
  EXPECT_GT(StackTop, StackLimit);
}
