//===- tests/integration_test.cpp - Whole-pipeline fuzzing campaigns ---------===//
//
// Figure 3 end to end: compile a workload, statically rewrite it, fuzz
// the instrumented binary, and observe coverage growth and gadget
// reports — on a stripped binary, since Teapot targets COTS inputs.
//
//===----------------------------------------------------------------------===//

#include "TestUtil.h"
#include "fuzz/Fuzzer.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::workloads;

TEST(Integration, StrippedBinaryFuzzCampaign) {
  const Workload &W = *findWorkload("jsmn");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip(); // COTS: no symbols, no relocations

  auto RW = core::rewriteBinary(Bin, {});
  ASSERT_TRUE(RW) << RW.message();
  runtime::RuntimeOptions RT;
  InstrumentedTarget T(*RW, RT);

  fuzz::FuzzerOptions FO;
  FO.Seed = 1;
  FO.MaxIterations = 120;
  FO.MaxInputLen = 256;
  fuzz::Fuzzer F(T, FO);
  for (const auto &Seed : W.Seeds())
    F.addSeed(Seed);
  fuzz::FuzzerStats S = F.run();

  EXPECT_EQ(S.Executions, 120u);
  EXPECT_GT(S.NormalEdges, 5u) << "normal coverage should accumulate";
  EXPECT_GT(S.SpecEdges, 5u) << "speculative coverage should accumulate";
  EXPECT_GT(T.RT.Stats.Simulations, 100u);
}

TEST(Integration, BrotliFindsRealGadgetsWhileFuzzing) {
  // The decompressor's nested validation branches harbour genuine
  // Kasper-policy gadgets (the Table 4 observation).
  const Workload &W = *findWorkload("brotli");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip();
  auto RW = core::rewriteBinary(Bin, {});
  ASSERT_TRUE(RW) << RW.message();
  runtime::RuntimeOptions RT;
  RT.Nesting = runtime::NestingPolicy::Hybrid;
  InstrumentedTarget T(*RW, RT);

  fuzz::FuzzerOptions FO;
  FO.Seed = 7;
  FO.MaxIterations = 250;
  FO.MaxInputLen = 128;
  fuzz::Fuzzer F(T, FO);
  for (const auto &Seed : W.Seeds())
    F.addSeed(Seed);
  // A near-miss corpus entry (match distance barely exceeding the
  // window) of the kind a longer campaign discovers by itself.
  F.addSeed({1, 2, 'a', 'b', 2, 9, 3, 0});
  F.run();

  EXPECT_GT(T.RT.Reports.unique().size(), 0u)
      << "fuzzing the decompressor should surface speculative leaks";
}

TEST(Integration, CompilerChoiceCreatesAndRemovesGadgets) {
  // Figure 2 as an experiment: the same dispatcher source, compiled with
  // branch-cascade switches vs jump-table switches. Only the former can
  // leak through a mistrained case comparison.
  const char *Dispatcher = R"(
int g_out;
int handle(char *buf, int n, int op, int arg) {
  switch (op) {
    case 0: { g_out = 1; break; }
    case 1: { if (arg < n) { g_out = buf[arg]; } break; }
    case 2: { g_out = n; break; }
    case 3: { g_out = arg * 2; break; }
    default: { g_out = 0; break; }
  }
  return g_out;
}
int main() {
  char hdr[8];
  read_input(hdr, 2);
  char *buf = malloc(32);
  int acc = handle(buf, 32, hdr[0] & 3, hdr[1]);
  int t = buf[acc & 31];
  return t;
}
)";
  for (lang::SwitchLowering SL :
       {lang::SwitchLowering::Branches, lang::SwitchLowering::JumpTable}) {
    lang::CompileOptions CO;
    CO.Switches = SL;
    obj::ObjectFile Bin = compileOrDie(Dispatcher, CO);
    auto RW = core::rewriteBinary(Bin, {});
    ASSERT_TRUE(RW) << RW.message();
    runtime::RuntimeOptions RT;
    InstrumentedTarget T(*RW, RT);

    fuzz::FuzzerOptions FO;
    FO.Seed = 13;
    FO.MaxIterations = 150;
    FO.MaxInputLen = 8;
    fuzz::Fuzzer F(T, FO);
    F.addSeed({1, 200});
    F.addSeed({1, 5});
    F.run();
    if (SL == lang::SwitchLowering::Branches)
      EXPECT_GT(T.RT.Reports.unique().size(), 0u)
          << "branch-cascade switch: the op==1 bounds check is a victim";
    // Note: with a jump table the *switch dispatch* is safe; the if
    // inside case 1 is still a branch, so we only assert the contrast
    // in the bench (which separates dispatch-gadgets from body-gadgets).
  }
}

TEST(Integration, TwentyFourHourStandInDeterminism) {
  // Two identical mini-campaigns produce identical results: the whole
  // stack (workload, rewriter, runtime, fuzzer) is deterministic, which
  // is what makes every EXPERIMENTS.md number reproducible.
  auto Campaign = [&]() {
    const Workload &W = *findWorkload("libhtp");
    obj::ObjectFile Bin = compileOrDie(W.Source);
    auto RW = core::rewriteBinary(Bin, {});
    EXPECT_TRUE(RW);
    runtime::RuntimeOptions RT;
    InstrumentedTarget T(*RW, RT);
    fuzz::FuzzerOptions FO;
    FO.Seed = 99;
    FO.MaxIterations = 80;
    fuzz::Fuzzer F(T, FO);
    for (const auto &Seed : W.Seeds())
      F.addSeed(Seed);
    fuzz::FuzzerStats S = F.run();
    return std::make_tuple(S.CorpusAdds, S.NormalEdges, S.SpecEdges,
                           T.RT.Reports.unique().size());
  };
  EXPECT_EQ(Campaign(), Campaign());
}
