//===- tests/campaign_test.cpp - Parallel campaign tests ---------------------===//
//
// The campaign contracts under test (docs/FUZZING.md):
//
//   1. Workers == 1 is the single-threaded Fuzzer, byte for byte: same
//      corpus, same stats, same gadget set under the same seed + budget.
//   2. At any worker count, results depend only on (seed, budget,
//      workers, sync interval) — never on thread scheduling.
//   3. The execution budget is divided exactly, and gadget reports
//      deduplicate across workers.
//
//===----------------------------------------------------------------------===//

#include "Fixtures.h"
#include "TestUtil.h"
#include "fuzz/Campaign.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::fuzz;

using teapot::testutil::MagicTarget; // shared with fuzz_test (Fixtures.h)

namespace {

/// A detector-bearing synthetic target: inputs starting with 0xab report
/// a gadget whose site is picked by the second byte, through the
/// target's own ReportSink — the shape InstrumentedTarget has.
class GadgetyTarget : public FuzzTarget {
public:
  GadgetyTarget() : Normal(40, 0), Spec(1, 0) {}

  void execute(const std::vector<uint8_t> &Input) override {
    std::fill(Normal.begin(), Normal.end(), 0);
    Normal[0] = 1;
    if (!Input.empty())
      Normal[1 + Input[0] % 32] = 1;
    if (Input.size() >= 2 && Input[0] == 0xab) {
      runtime::GadgetReport R;
      R.Site = 0x1000 + Input[1] % 4;
      R.Chan = runtime::Channel::Cache;
      R.Ctrl = runtime::Controllability::User;
      Sink.report(R);
    }
  }
  const std::vector<uint8_t> &normalCoverage() const override {
    return Normal;
  }
  const std::vector<uint8_t> &specCoverage() const override { return Spec; }
  const runtime::ReportSink *reports() const override { return &Sink; }

  runtime::ReportSink Sink;

private:
  std::vector<uint8_t> Normal, Spec;
};

std::set<GadgetSink::Key> keysOf(const std::vector<runtime::GadgetReport> &Rs) {
  std::set<GadgetSink::Key> K;
  for (const auto &R : Rs)
    K.insert({R.Site, R.Chan, R.Ctrl});
  return K;
}

} // namespace

TEST(Campaign, OneWorkerIsByteIdenticalToFuzzer) {
  FuzzerOptions FO;
  FO.Seed = 11;
  FO.MaxIterations = 6000;
  FO.MaxInputLen = 16;
  MagicTarget T;
  Fuzzer F(T, FO);
  F.addSeed({'T', 'x', 'x', 'x'});
  FuzzerStats FS = F.run();

  CampaignOptions CO;
  CO.Seed = 11;
  CO.TotalIterations = 6000;
  CO.Workers = 1;
  CO.SyncInterval = 512; // epoch boundaries must not perturb the stream
  CO.MaxInputLen = 16;
  Campaign C([] { return std::make_unique<MagicTarget>(); }, CO);
  C.addSeed({'T', 'x', 'x', 'x'});
  CampaignStats CS = C.run();

  EXPECT_EQ(C.corpus(), F.corpus()) << "corpus must match byte for byte";
  EXPECT_EQ(CS.Executions, FS.Executions);
  EXPECT_EQ(CS.CorpusAdds, FS.CorpusAdds);
  EXPECT_EQ(CS.NormalEdges, FS.NormalEdges);
  EXPECT_EQ(CS.SpecEdges, FS.SpecEdges);
  EXPECT_EQ(CS.Imports, 0u);
}

TEST(Campaign, OneWorkerGadgetSetMatchesFuzzerTarget) {
  FuzzerOptions FO;
  FO.Seed = 3;
  FO.MaxIterations = 4000;
  FO.MaxInputLen = 8;
  GadgetyTarget T;
  Fuzzer F(T, FO);
  F.addSeed({0xab, 0});
  F.run();

  CampaignOptions CO;
  CO.Seed = 3;
  CO.TotalIterations = 4000;
  CO.Workers = 1;
  CO.MaxInputLen = 8;
  Campaign C([] { return std::make_unique<GadgetyTarget>(); }, CO);
  C.addSeed({0xab, 0});
  CampaignStats CS = C.run();

  EXPECT_GT(T.Sink.unique().size(), 0u);
  EXPECT_EQ(keysOf(C.gadgets().unique()), keysOf(T.Sink.unique()));
  EXPECT_EQ(CS.UniqueGadgets, T.Sink.unique().size());
}

TEST(Campaign, DeterministicRegardlessOfInterleaving) {
  // Two runs at the same worker count must agree exactly: all
  // cross-worker exchange happens at epoch barriers in worker-index
  // order, so OS thread scheduling cannot leak into the result.
  auto Run = [] {
    CampaignOptions CO;
    CO.Seed = 77;
    CO.TotalIterations = 3000;
    CO.Workers = 3;
    CO.SyncInterval = 64; // many epochs -> many interleaving chances
    CO.MaxInputLen = 16;
    Campaign C([] { return std::make_unique<GadgetyTarget>(); }, CO);
    C.addSeed({'T'});
    CampaignStats S = C.run();
    return std::make_tuple(C.corpus(), keysOf(C.gadgets().unique()),
                           S.Executions, S.CorpusAdds, S.Imports,
                           S.NormalEdges);
  };
  EXPECT_EQ(Run(), Run());
}

TEST(Campaign, BudgetIsDividedExactly) {
  CampaignOptions CO;
  CO.Seed = 5;
  CO.TotalIterations = 1003; // deliberately not divisible by 4
  CO.Workers = 4;
  CO.SyncInterval = 100;
  Campaign C([] { return std::make_unique<MagicTarget>(); }, CO);
  C.addSeed({'T'});
  CampaignStats S = C.run();
  EXPECT_EQ(S.Executions, 1003u);
  ASSERT_EQ(S.PerWorker.size(), 4u);
  EXPECT_EQ(S.PerWorker[0].Executions, 251u); // 250 + remainder share
  EXPECT_EQ(S.PerWorker[3].Executions, 250u);
}

TEST(Campaign, EmptySeedCampaignRuns) {
  CampaignOptions CO;
  CO.TotalIterations = 100;
  CO.Workers = 2;
  CO.SyncInterval = 16;
  Campaign C([] { return std::make_unique<MagicTarget>(); }, CO);
  CampaignStats S = C.run();
  EXPECT_EQ(S.Executions, 100u);
  ASSERT_FALSE(C.corpus().empty());
  EXPECT_TRUE(C.corpus()[0].empty()) << "starts from the empty input";
}

TEST(Campaign, WorkersAdoptEachOthersDiscoveries) {
  // With frequent syncs, a worker that lags on the magic prefix imports
  // the prefix milestones another worker published (deterministic under
  // the fixed seed: this configuration does import).
  CampaignOptions CO;
  CO.Seed = 9;
  CO.TotalIterations = 12000;
  CO.Workers = 2;
  CO.SyncInterval = 64;
  CO.MaxInputLen = 16;
  Campaign C([] { return std::make_unique<MagicTarget>(); }, CO);
  C.addSeed({'T', 'x', 'x', 'x'});
  CampaignStats S = C.run();
  EXPECT_GT(S.CorpusAdds, 0u);
  EXPECT_GT(S.Imports, 0u)
      << "coverage-novel imports should cross the shard boundary";
}

TEST(Campaign, RunIsRepeatable) {
  // run() starts afresh every call (new targets, cleared merged state),
  // so the same Campaign object reproduces itself exactly.
  CampaignOptions CO;
  CO.Seed = 7;
  CO.TotalIterations = 800;
  CO.Workers = 2;
  CO.SyncInterval = 64;
  CO.MaxInputLen = 8;
  Campaign C([] { return std::make_unique<GadgetyTarget>(); }, CO);
  C.addSeed({0xab, 1});
  CampaignStats A = C.run();
  auto CorpusA = C.corpus();
  auto GadgetsA = keysOf(C.gadgets().unique());
  CampaignStats B = C.run();
  EXPECT_EQ(C.corpus(), CorpusA);
  EXPECT_EQ(keysOf(C.gadgets().unique()), GadgetsA);
  EXPECT_EQ(A.Executions, B.Executions);
  EXPECT_EQ(A.CorpusAdds, B.CorpusAdds);
  EXPECT_EQ(A.UniqueGadgets, B.UniqueGadgets);
  EXPECT_GT(A.UniqueGadgets, 0u);
}

TEST(Campaign, WorkerSeedSplitIsDeterministicAndDistinct) {
  EXPECT_EQ(Campaign::workerSeed(42, 0), 42u)
      << "worker 0 must inherit the campaign seed (Fuzzer identity)";
  std::set<uint64_t> Seeds;
  for (unsigned I = 0; I != 8; ++I)
    Seeds.insert(Campaign::workerSeed(42, I));
  EXPECT_EQ(Seeds.size(), 8u) << "streams must be distinct";
  EXPECT_EQ(Campaign::workerSeed(42, 5), Campaign::workerSeed(42, 5));
}

TEST(GadgetSink, DedupesAcrossWorkerSinks) {
  runtime::ReportSink A, B;
  runtime::GadgetReport R1{0x100, runtime::Channel::Cache,
                           runtime::Controllability::User, 1, 1};
  runtime::GadgetReport R2{0x200, runtime::Channel::MDS,
                           runtime::Controllability::Massage, 2, 1};
  A.report(R1);
  B.report(R1); // same gadget, found by another worker
  B.report(R2);

  GadgetSink G;
  size_t NewGadgets = 0;
  G.OnNewGadget = [&](const runtime::GadgetReport &) { ++NewGadgets; };
  EXPECT_EQ(G.merge(A), 1u);
  EXPECT_EQ(G.merge(B), 1u) << "R1 already known, only R2 is new";
  EXPECT_EQ(G.merge(B), 0u);
  EXPECT_EQ(G.uniqueCount(), 2u);
  EXPECT_EQ(NewGadgets, 2u);
  EXPECT_EQ(G.count(runtime::Controllability::User,
                    runtime::Channel::Cache), 1u);
  // Snapshot is key-ordered: independent of which worker merged first.
  auto U = G.unique();
  ASSERT_EQ(U.size(), 2u);
  EXPECT_EQ(U[0].Site, 0x100u);
  EXPECT_EQ(U[1].Site, 0x200u);

  EXPECT_FALSE(G.report(R2)) << "report() dedupes too";
}

TEST(Campaign, InstrumentedWorkersMatchFuzzerAtOneWorker) {
  // The real thing: a rewritten workload under the SpecRuntime, fuzzed
  // by the classic Fuzzer and by a one-worker campaign. Both paths must
  // agree on corpus bytes and on the discovered gadget set.
  const workloads::Workload &W = *workloads::findWorkload("jsmn");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip();
  auto RW = rewriteOrDie(Bin);
  runtime::RuntimeOptions RT;

  workloads::InstrumentedTarget T(RW, RT);
  FuzzerOptions FO;
  FO.Seed = 1;
  FO.MaxIterations = 120;
  FO.MaxInputLen = 256;
  Fuzzer F(T, FO);
  for (const auto &Seed : W.Seeds())
    F.addSeed(Seed);
  FuzzerStats FS = F.run();

  CampaignOptions CO;
  CO.Seed = 1;
  CO.TotalIterations = 120;
  CO.Workers = 1;
  CO.SyncInterval = 32; // several epochs within the tiny budget
  CO.MaxInputLen = 256;
  Campaign C(workloads::instrumentedTargetFactory(RW, RT), CO);
  for (const auto &Seed : W.Seeds())
    C.addSeed(Seed);
  CampaignStats CS = C.run();

  EXPECT_EQ(C.corpus(), F.corpus());
  EXPECT_EQ(CS.Executions, FS.Executions);
  EXPECT_EQ(CS.CorpusAdds, FS.CorpusAdds);
  EXPECT_EQ(CS.NormalEdges, FS.NormalEdges);
  EXPECT_EQ(CS.SpecEdges, FS.SpecEdges);
  EXPECT_EQ(keysOf(C.gadgets().unique()),
            keysOf(T.RT.Reports.unique()));
}

TEST(Campaign, InstrumentedMultiWorkerIsDeterministic) {
  const workloads::Workload &W = *workloads::findWorkload("jsmn");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip();
  auto RW = rewriteOrDie(Bin);
  runtime::RuntimeOptions RT;

  auto Run = [&] {
    CampaignOptions CO;
    CO.Seed = 21;
    CO.TotalIterations = 160;
    CO.Workers = 2;
    CO.SyncInterval = 20;
    CO.MaxInputLen = 128;
    Campaign C(workloads::instrumentedTargetFactory(RW, RT), CO);
    for (const auto &Seed : W.Seeds())
      C.addSeed(Seed);
    CampaignStats S = C.run();
    return std::make_tuple(C.corpus(), keysOf(C.gadgets().unique()),
                           S.Executions, S.CorpusAdds, S.Imports);
  };
  auto A = Run(), B = Run();
  EXPECT_EQ(A, B) << "2-worker campaign must not depend on scheduling";
  EXPECT_EQ(std::get<2>(A), 160u);
}

TEST(Campaign, HotPathCountersAreDeterministic) {
  const workloads::Workload &W = *workloads::findWorkload("jsmn");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip();
  auto RW = rewriteOrDie(Bin);
  runtime::RuntimeOptions RT;

  auto Run = [&] {
    CampaignOptions CO;
    CO.Seed = 21;
    CO.TotalIterations = 160;
    CO.Workers = 2;
    CO.SyncInterval = 20;
    CO.MaxInputLen = 128;
    Campaign C(workloads::instrumentedTargetFactory(RW, RT), CO);
    for (const auto &Seed : W.Seeds())
      C.addSeed(Seed);
    return C.run();
  };
  CampaignStats A = Run(), B = Run();
  // The split-TLB and fast-path counters are part of CampaignStats'
  // defaulted equality, so this compares them too.
  EXPECT_EQ(A, B) << "hot-path counters must be run-twice identical";
  // And they must actually be live on an instrumented target: the
  // shadow traffic hits the runtime bank, guest data hits the guest
  // bank, and the block/JIT tiers retire no-op intrinsics inline.
  EXPECT_GT(A.TlbGuestHits, 0u);
  EXPECT_GT(A.TlbRuntimeHits, 0u);
  EXPECT_GT(A.TlbSlowPathCalls, 0u);
  EXPECT_GT(A.IntrinsicFastPathHits, 0u);
}
