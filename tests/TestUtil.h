//===- tests/TestUtil.h - Shared test helpers ---------------------*- C++ -*-===//

#ifndef TEAPOT_TESTS_TESTUTIL_H
#define TEAPOT_TESTS_TESTUTIL_H

#include "asm/Assembler.h"
#include "core/TeapotRewriter.h"
#include "lang/MiniCC.h"
#include "vm/Machine.h"

#include <gtest/gtest.h>

namespace teapot {
namespace testutil {

inline obj::ObjectFile assembleOrDie(const char *Src) {
  auto ObjOrErr = assembler::assemble(Src);
  if (!ObjOrErr) {
    ADD_FAILURE() << "assembly failed: " << ObjOrErr.message();
    abort();
  }
  return std::move(*ObjOrErr);
}

inline obj::ObjectFile compileOrDie(
    const char *Src, lang::CompileOptions Opts = {}) {
  auto ObjOrErr = lang::compile(Src, Opts);
  if (!ObjOrErr) {
    ADD_FAILURE() << "MiniCC compile failed: " << ObjOrErr.message();
    abort();
  }
  return std::move(*ObjOrErr);
}

struct RunResult {
  vm::StopState Stop;
  std::vector<uint8_t> Output;
  uint64_t Insts = 0;
};

/// Loads and runs \p Bin natively (no instrumentation/runtime).
inline RunResult runNative(const obj::ObjectFile &Bin,
                           const std::vector<uint8_t> &Input = {},
                           uint64_t Budget = 20'000'000) {
  vm::Machine M;
  cantFail(M.loadObject(Bin));
  M.setInput(Input);
  RunResult R;
  R.Stop = M.run(Budget);
  R.Output = M.output();
  R.Insts = M.executedInsts();
  return R;
}

inline core::RewriteResult rewriteOrDie(
    const obj::ObjectFile &Bin, core::RewriterOptions Opts = {}) {
  auto RWOrErr = core::rewriteBinary(Bin, Opts);
  if (!RWOrErr) {
    ADD_FAILURE() << "rewrite failed: " << RWOrErr.message();
    abort();
  }
  return std::move(*RWOrErr);
}

} // namespace testutil
} // namespace teapot

#endif
