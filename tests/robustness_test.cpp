//===- tests/robustness_test.cpp - Hostile-target hardening tests -----------===//
//
// The robustness contracts under test (docs/ROBUSTNESS.md):
//
//   1. Fault plans are deterministic: the same plan driven through the
//      same call sequence fires at the same points, and the counter
//      state persists through snapshots.
//   2. Crash containment: exceptions escaping a worker's execute() are
//      quarantined, charged against the budget, collected in worker
//      order at the epoch barrier, saved/resumed with the campaign, and
//      replayable (injected faults reproduce their signatures).
//   3. Graceful degradation: guest OOM is a per-execution StopState
//      identical across all three engines, JIT arena exhaustion falls
//      back to the block engine with gadget parity, and the rollback
//      watchdog bounds runaway speculation deterministically.
//   4. Durable artifacts: writeFileAtomic retries injected failures,
//      never destroys the previous artifact, and reports attempts.
//   5. Corrupt snapshots (truncation at every byte, random bit flips)
//      produce clean diagnostics, never crashes or half-applied state.
//
//===----------------------------------------------------------------------===//

#include "Fixtures.h"
#include "TestUtil.h"
#include "api/Scanner.h"
#include "fuzz/Campaign.h"
#include "support/FaultInjector.h"
#include "support/File.h"
#include "vm/Machine.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <random>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::fuzz;
using namespace teapot::vm;
using support::FaultInjector;
using support::FaultPlan;

namespace {

//===----------------------------------------------------------------------===//
// Fault plans and injectors
//===----------------------------------------------------------------------===//

TEST(FaultPlanTest, ParsesAndCanonicalizes) {
  FaultPlan P = cantFail(
      FaultPlan::parse("worker.execute@5,12;mem.page_alloc@every:64:7"));
  ASSERT_EQ(P.Sites.size(), 2u);
  const support::FaultSchedule &W = P.Sites.at("worker.execute");
  EXPECT_EQ(W.Hits, (std::vector<uint64_t>{5, 12}));
  EXPECT_TRUE(W.firesAt(5));
  EXPECT_TRUE(W.firesAt(12));
  EXPECT_FALSE(W.firesAt(6));
  const support::FaultSchedule &M = P.Sites.at("mem.page_alloc");
  EXPECT_EQ(M.Every, 64u);
  EXPECT_EQ(M.Offset, 7u);
  EXPECT_TRUE(M.firesAt(7));
  EXPECT_TRUE(M.firesAt(71));
  EXPECT_FALSE(M.firesAt(64));

  // parse(spelling()) round-trips.
  EXPECT_EQ(cantFail(FaultPlan::parse(P.spelling())), P);

  // The empty string is the empty plan.
  EXPECT_TRUE(cantFail(FaultPlan::parse("")).empty());
}

TEST(FaultPlanTest, RejectsBadSpellings) {
  // A typo'd site name must be a parse error, not a plan that silently
  // never fires.
  EXPECT_FALSE(static_cast<bool>(FaultPlan::parse("mem.pgae_alloc@1")));
  EXPECT_FALSE(static_cast<bool>(FaultPlan::parse("worker.execute")));
  EXPECT_FALSE(static_cast<bool>(FaultPlan::parse("worker.execute@")));
  EXPECT_FALSE(static_cast<bool>(FaultPlan::parse("worker.execute@zero")));
  EXPECT_FALSE(static_cast<bool>(FaultPlan::parse("worker.execute@every:")));
  EXPECT_FALSE(static_cast<bool>(FaultPlan::parse("file.write@0")));
}

TEST(FaultInjectorTest, FiresDeterministically) {
  auto Drive = [](FaultInjector &F) {
    std::string Pattern;
    for (int I = 0; I != 24; ++I)
      Pattern += F.shouldFail("worker.execute") ? 'X' : '.';
    return Pattern;
  };
  FaultInjector A(cantFail(FaultPlan::parse("worker.execute@every:7:3")));
  FaultInjector B(cantFail(FaultPlan::parse("worker.execute@every:7:3")));
  std::string PA = Drive(A);
  EXPECT_EQ(PA, Drive(B)) << "same plan, same call sequence, same firings";
  EXPECT_EQ(PA, "..X......X......X......X");
  EXPECT_EQ(A.injectedCount(), 4u);
  EXPECT_EQ(A.hitCount("worker.execute"), 24u);
}

TEST(FaultInjectorTest, EmptyPlanIsIdleAndCountingFree) {
  // An un-fault-injected target must carry no injector state, so plain
  // campaign snapshots stay byte-identical to pre-fault-injection
  // builds.
  FaultInjector F;
  for (int I = 0; I != 100; ++I)
    EXPECT_FALSE(F.shouldFail("mem.page_alloc"));
  EXPECT_TRUE(F.idle());
  EXPECT_EQ(F.injectedCount(), 0u);
  EXPECT_EQ(F.hitCount("mem.page_alloc"), 0u);

  // Un-armed sites stay counting-free under a non-empty plan too: the
  // JIT arena's hit stream tracks compile activity (machine lifetime,
  // not campaign position), so persisting it would break resumed-run
  // byte-identity for any armed plan.
  FaultInjector G(cantFail(FaultPlan::parse("worker.execute@every:7")));
  for (int I = 0; I != 100; ++I)
    EXPECT_FALSE(G.shouldFail("jit.arena_alloc"));
  EXPECT_EQ(G.hitCount("jit.arena_alloc"), 0u);
  EXPECT_EQ(G.countersToJson().dump(false),
            FaultInjector(cantFail(FaultPlan::parse("worker.execute@every:7")))
                .countersToJson()
                .dump(false));
}

TEST(FaultInjectorTest, CountersResumeTheStream) {
  // Persisted counters put a fresh injector at the exact stream
  // position: the continuation fires identically to the uninterrupted
  // injector.
  FaultPlan Plan = cantFail(FaultPlan::parse("file.write@every:5"));
  FaultInjector Full(Plan), Cut(Plan);
  for (int I = 0; I != 13; ++I) {
    Full.shouldFail("file.write");
    Cut.shouldFail("file.write");
  }
  FaultInjector Resumed(Plan);
  ASSERT_FALSE(Resumed.countersFromJson(Cut.countersToJson()));
  EXPECT_EQ(Resumed.hitCount("file.write"), 13u);
  for (int I = 0; I != 20; ++I)
    EXPECT_EQ(Resumed.shouldFail("file.write"), Full.shouldFail("file.write"))
        << "diverged " << I << " hits after resume";
}

//===----------------------------------------------------------------------===//
// Durable artifact writes
//===----------------------------------------------------------------------===//

std::string tempPath(const char *Name) {
  std::string Dir = ::testing::TempDir();
  if (!Dir.empty() && Dir.back() != '/')
    Dir += '/';
  return Dir + Name;
}

std::string readOrDie(const std::string &Path) {
  return cantFail(support::readFile(Path));
}

TEST(AtomicWriteTest, WritesWithoutRetries) {
  std::string Path = tempPath("teapot_atomic_plain.txt");
  EXPECT_EQ(cantFail(support::writeFileAtomic(Path, "hello\n")), 0u);
  EXPECT_EQ(readOrDie(Path), "hello\n");
  std::remove(Path.c_str());
}

TEST(AtomicWriteTest, RetriesAnInjectedFailure) {
  std::string Path = tempPath("teapot_atomic_retry.txt");
  FaultInjector F(cantFail(FaultPlan::parse("file.write@1")));
  support::AtomicWriteOptions Opts;
  Opts.Faults = &F;
  EXPECT_EQ(cantFail(support::writeFileAtomic(Path, "second try\n", Opts)),
            1u);
  EXPECT_EQ(readOrDie(Path), "second try\n");
  std::remove(Path.c_str());
}

TEST(AtomicWriteTest, ExhaustionPreservesThePreviousArtifact) {
  // The flagship durability property: a write that fails every attempt
  // must leave the previous artifact byte-identical — the temp file
  // took the damage, not the destination.
  std::string Path = tempPath("teapot_atomic_keep.txt");
  ASSERT_EQ(cantFail(support::writeFileAtomic(Path, "precious\n")), 0u);

  FaultInjector F(cantFail(FaultPlan::parse("file.write@every:1")));
  support::AtomicWriteOptions Opts;
  Opts.Faults = &F;
  auto R = support::writeFileAtomic(Path, "clobber\n", Opts);
  ASSERT_FALSE(static_cast<bool>(R)) << "every attempt was scheduled to fail";
  EXPECT_NE(R.message().find("attempts"), std::string::npos)
      << "got: " << R.message();
  EXPECT_EQ(readOrDie(Path), "precious\n");
  std::remove(Path.c_str());
}

TEST(AtomicWriteTest, MissingDirectoryIsADiagnosedError) {
  auto R = support::writeFileAtomic(
      "/nonexistent-teapot-dir/artifact.json", "x");
  ASSERT_FALSE(static_cast<bool>(R));
  EXPECT_NE(R.message().find("nonexistent-teapot-dir"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Guest OOM: a per-execution StopState, identical on every engine
//===----------------------------------------------------------------------===//

/// Allocates page after page, dirtying each one, until the configured
/// Memory::MaxPages ceiling (if any) refuses a materialization.
const char *PageHungryVictim = R"(
int main() {
  int j;
  int total = 0;
  for (j = 0; j < 64; j = j + 1) {
    char *p = malloc(4096);
    p[0] = 1;
    p[4095] = 2;
    total = total + 1;
  }
  return total;
}
)";

constexpr Machine::Engine AllEngines[] = {Machine::Engine::Interpreter,
                                          Machine::Engine::Block,
                                          Machine::Engine::Jit};

struct OomRun {
  StopState Stop;
  uint64_t Insts = 0;
};

OomRun runCapped(const obj::ObjectFile &Bin, Machine::Engine Eng,
                 uint64_t MaxPages) {
  Machine M;
  M.Eng = Eng;
  cantFail(M.loadObject(Bin));
  // Refusals happen on the dirty-tracked materialization path — the
  // fuzzing configuration, where a hostile input's appetite for pages
  // must not become a host OOM. A plain one-shot run is unaffected.
  M.captureBaseline();
  M.resetToBaseline();
  M.Mem.MaxPages = MaxPages;
  OomRun R;
  R.Stop = M.run(10'000'000);
  R.Insts = M.executedInsts();
  return R;
}

TEST(GuestOom, CeilingIsAStopStateOnEveryEngine) {
  obj::ObjectFile Bin = compileOrDie(PageHungryVictim);

  // Uncapped control: the victim halts normally after 64 allocations.
  Machine Control;
  Control.Eng = Machine::Engine::Interpreter;
  cantFail(Control.loadObject(Bin));
  size_t BasePages = Control.Mem.mappedPageCount();
  StopState ControlStop = Control.run(10'000'000);
  ASSERT_EQ(ControlStop.Kind, StopKind::Halted);
  ASSERT_EQ(ControlStop.ExitStatus, 64);
  size_t FullPages = Control.Mem.mappedPageCount();
  ASSERT_GT(FullPages, BasePages + 16) << "victim must be page-hungry";

  // Capped: some allocations succeed, then a refused materialization
  // becomes an OutOfMemory fault — the same fault, at the same
  // instruction, on every engine. Not a host OOM, not an abort.
  uint64_t Cap = BasePages + 8;
  OomRun Ref = runCapped(Bin, Machine::Engine::Interpreter, Cap);
  EXPECT_EQ(Ref.Stop.Kind, StopKind::Fault);
  EXPECT_EQ(Ref.Stop.Fault, FaultKind::OutOfMemory);
  for (Machine::Engine Eng : AllEngines) {
    OomRun R = runCapped(Bin, Eng, Cap);
    EXPECT_EQ(R.Stop.Kind, Ref.Stop.Kind) << engineName(Eng);
    EXPECT_EQ(R.Stop.Fault, Ref.Stop.Fault) << engineName(Eng);
    EXPECT_EQ(R.Stop.FaultAddr, Ref.Stop.FaultAddr) << engineName(Eng);
    EXPECT_EQ(R.Insts, Ref.Insts) << engineName(Eng);
  }
}

TEST(GuestOom, IsAPerExecutionCondition) {
  // After resetToBaseline the refused pages are gone and the OOM
  // repeats identically — the machine is reusable, the condition is
  // per-execution.
  obj::ObjectFile Bin = compileOrDie(PageHungryVictim);
  Machine M;
  M.Eng = Machine::Engine::Jit;
  cantFail(M.loadObject(Bin));
  M.captureBaseline();
  M.Mem.MaxPages = M.Mem.mappedPageCount() + 8;

  M.resetToBaseline();
  StopState First = M.run(10'000'000);
  uint64_t FirstInsts = M.executedInsts();
  ASSERT_EQ(First.Kind, StopKind::Fault);
  ASSERT_EQ(First.Fault, FaultKind::OutOfMemory);

  M.resetToBaseline();
  StopState Second = M.run(10'000'000);
  EXPECT_EQ(Second.Kind, First.Kind);
  EXPECT_EQ(Second.Fault, First.Fault);
  EXPECT_EQ(Second.FaultAddr, First.FaultAddr);
  EXPECT_EQ(M.executedInsts(), FirstInsts);
}

TEST(GuestOom, InjectedPageFaultMatchesTheCeilingPath) {
  // mem.page_alloc injection exercises the same refusal path as the
  // ceiling, with the same engine-invariant StopState.
  obj::ObjectFile Bin = compileOrDie(PageHungryVictim);
  std::optional<OomRun> Ref;
  for (Machine::Engine Eng : AllEngines) {
    Machine M;
    M.Eng = Eng;
    cantFail(M.loadObject(Bin));
    M.captureBaseline();
    M.resetToBaseline();
    // Armed after load so the object's own pages materialize freely.
    FaultInjector F(cantFail(FaultPlan::parse("mem.page_alloc@3")));
    M.Mem.Faults = &F;
    OomRun R;
    R.Stop = M.run(10'000'000);
    R.Insts = M.executedInsts();
    EXPECT_EQ(R.Stop.Kind, StopKind::Fault) << engineName(Eng);
    EXPECT_EQ(R.Stop.Fault, FaultKind::OutOfMemory) << engineName(Eng);
    EXPECT_EQ(F.injectedCount(), 1u) << engineName(Eng);
    if (!Ref)
      Ref = R;
    EXPECT_EQ(R.Stop.FaultAddr, Ref->Stop.FaultAddr) << engineName(Eng);
    EXPECT_EQ(R.Insts, Ref->Insts) << engineName(Eng);
  }
}

//===----------------------------------------------------------------------===//
// JIT degradation
//===----------------------------------------------------------------------===//

TEST(JitDegrade, SealFaultsFallBackToTheBlockEngine) {
  if (resolveEngine(Machine::Engine::Jit) != Machine::Engine::Jit)
    GTEST_SKIP() << "no JIT backend on this host";
  obj::ObjectFile Bin = compileOrDie(PageHungryVictim);

  Machine Ref;
  Ref.Eng = Machine::Engine::Block;
  cantFail(Ref.loadObject(Bin));
  StopState RefStop = Ref.run(10'000'000);
  ASSERT_EQ(RefStop.Kind, StopKind::Halted);

  Machine M;
  M.Eng = Machine::Engine::Jit;
  cantFail(M.loadObject(Bin));
  FaultInjector F(cantFail(FaultPlan::parse("jit.arena_seal@every:1")));
  M.Faults = &F;
  StopState Stop = M.run(10'000'000);
  EXPECT_EQ(Stop.Kind, RefStop.Kind);
  EXPECT_EQ(Stop.ExitStatus, RefStop.ExitStatus);
  EXPECT_EQ(M.executedInsts(), Ref.executedInsts());
  EXPECT_GE(M.jitDegrades(), 1u) << "every seal fails: must degrade";
}

/// Scans one generated program with the given engine / arena budget and
/// returns the comparable result fields (wall-clock timings excluded).
ScanResult scanGenerated(uint64_t ProgSeed, Machine::Engine Eng,
                         uint64_t ArenaBytes, const char *Plan = "") {
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign.Seed = 11;
  Cfg.Campaign.TotalIterations = 200;
  Cfg.Campaign.Workers = 2;
  Cfg.Campaign.SyncInterval = 32;
  Cfg.Campaign.MaxInputLen = 64;
  Cfg.Engine = Eng;
  Cfg.JitArenaBytes = ArenaBytes;
  Cfg.FaultPlan = Plan;
  Scanner S(Cfg);
  lang::ProgGenOptions PG;
  PG.Seed = ProgSeed;
  PG.Size = 3;
  cantFail(S.loadGenerated(PG));
  cantFail(S.rewrite());
  return cantFail(S.run());
}

TEST(JitDegrade, TinyArenaKeepsGadgetParityWithBlock) {
  // The arena-exhaustion satellite: a JIT squeezed into a toy arena
  // (constant flush pressure, eventual fallback) must still find
  // exactly what the block engine finds, over a ProgGen sweep.
  for (uint64_t ProgSeed : {101u, 202u, 303u}) {
    ScanResult Jit = scanGenerated(ProgSeed, Machine::Engine::Jit, 1 << 16);
    ScanResult Block = scanGenerated(ProgSeed, Machine::Engine::Block, 0);
    EXPECT_EQ(Jit.Executions, Block.Executions) << "prog " << ProgSeed;
    EXPECT_EQ(Jit.CorpusSize, Block.CorpusSize) << "prog " << ProgSeed;
    EXPECT_EQ(Jit.NormalEdges, Block.NormalEdges) << "prog " << ProgSeed;
    EXPECT_EQ(Jit.SpecEdges, Block.SpecEdges) << "prog " << ProgSeed;
    EXPECT_EQ(Jit.Gadgets, Block.Gadgets) << "prog " << ProgSeed;
    EXPECT_EQ(Jit.GuestInsts, Block.GuestInsts) << "prog " << ProgSeed;
  }
}

TEST(JitDegrade, SealPlanDegradesDeterministically) {
  if (resolveEngine(Machine::Engine::Jit) != Machine::Engine::Jit)
    GTEST_SKIP() << "no JIT backend on this host";
  ScanResult A =
      scanGenerated(101, Machine::Engine::Jit, 0, "jit.arena_seal@every:1");
  EXPECT_GT(A.Degradations, 0u);
  EXPECT_GT(A.FaultsInjected, 0u);
  ScanResult B =
      scanGenerated(101, Machine::Engine::Jit, 0, "jit.arena_seal@every:1");
  EXPECT_EQ(A.Degradations, B.Degradations);
  EXPECT_EQ(A.FaultsInjected, B.FaultsInjected);
  // And degradation is invisible to the scan's findings.
  ScanResult Clean = scanGenerated(101, Machine::Engine::Jit, 0);
  EXPECT_EQ(A.Gadgets, Clean.Gadgets);
  EXPECT_EQ(A.CorpusSize, Clean.CorpusSize);
  EXPECT_EQ(A.NormalEdges, Clean.NormalEdges);
}

//===----------------------------------------------------------------------===//
// Rollback watchdog
//===----------------------------------------------------------------------===//

TEST(Watchdog, BoundsRunawayRollbacksDeterministically) {
  auto Scan = [](uint64_t MaxRollbacks) {
    ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
    Cfg.Campaign.TotalIterations = 120;
    Cfg.Campaign.SyncInterval = 20;
    Cfg.Campaign.MaxInputLen = 128;
    Cfg.Runtime.MaxRollbacksPerRun = MaxRollbacks;
    Scanner S(Cfg);
    cantFail(S.loadWorkload("jsmn"));
    cantFail(S.rewrite());
    return cantFail(S.run());
  };
  ScanResult Tripped = Scan(1);
  EXPECT_GT(Tripped.WatchdogTrips, 0u)
      << "a 1-rollback budget must trip on jsmn";
  ScanResult Again = Scan(1);
  EXPECT_EQ(Again.WatchdogTrips, Tripped.WatchdogTrips);
  EXPECT_EQ(Again.Executions, Tripped.Executions);
  EXPECT_EQ(Again.CorpusSize, Tripped.CorpusSize);
  ScanResult Unbounded = Scan(0);
  EXPECT_EQ(Unbounded.WatchdogTrips, 0u);
}

//===----------------------------------------------------------------------===//
// Crash quarantine
//===----------------------------------------------------------------------===//

/// GadgetyTarget plus a deterministic crash: inputs starting with 0xee
/// throw (an injected-style TeapotError), inputs starting with 0xdd
/// throw a plain runtime_error (a "genuine" target crash).
class CrashyTarget : public FuzzTarget {
public:
  CrashyTarget() : Normal(40, 0), Spec(1, 0) {}

  void execute(const std::vector<uint8_t> &Input) override {
    std::fill(Normal.begin(), Normal.end(), 0);
    Normal[0] = 1;
    if (!Input.empty()) {
      if (Input[0] == 0xee)
        throw TeapotError("worker.execute", "injected worker.execute fault");
      if (Input[0] == 0xdd)
        throw std::runtime_error("synthetic target crash");
      Normal[1 + Input[0] % 32] = 1;
    }
    if (Input.size() >= 2 && Input[0] == 0xab) {
      runtime::GadgetReport R;
      R.Site = 0x1000 + Input[1] % 4;
      R.Chan = runtime::Channel::Cache;
      R.Ctrl = runtime::Controllability::User;
      Sink.report(R);
    }
  }
  const std::vector<uint8_t> &normalCoverage() const override {
    return Normal;
  }
  const std::vector<uint8_t> &specCoverage() const override { return Spec; }
  const runtime::ReportSink *reports() const override { return &Sink; }

  runtime::ReportSink Sink;

private:
  std::vector<uint8_t> Normal, Spec;
};

CampaignOptions crashyOptions(unsigned Workers, uint64_t MaxEpochs = 0) {
  CampaignOptions CO;
  CO.Seed = 7;
  CO.TotalIterations = 1200;
  CO.Workers = Workers;
  CO.SyncInterval = 128;
  CO.MaxInputLen = 16;
  CO.MaxEpochs = MaxEpochs;
  return CO;
}

std::unique_ptr<Campaign> makeCrashy(CampaignOptions CO) {
  auto C = std::make_unique<Campaign>(
      [] { return std::make_unique<CrashyTarget>(); }, CO);
  C->addSeed({0xee, 1});
  C->addSeed({0xdd, 2});
  C->addSeed({0xab, 0});
  C->addSeed({'s', 'e', 'e', 'd'});
  return C;
}

json::Value throughText(const json::Value &Snapshot) {
  std::string Text = Snapshot.dump(true);
  auto Parsed = json::parse(Text);
  EXPECT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->dump(true), Text);
  return *Parsed;
}

TEST(Quarantine, ContainsCrashesAndChargesTheBudget) {
  auto C = makeCrashy(crashyOptions(2));
  CampaignStats S = C->run();
  // Crashes are contained, not fatal: the full budget executed.
  EXPECT_EQ(S.Executions, 1200u);
  const auto &Q = C->quarantine();
  ASSERT_FALSE(Q.empty()) << "the crashing seeds alone must quarantine";
  EXPECT_EQ(S.Quarantined, Q.size());
  uint64_t Injected = 0, Genuine = 0;
  for (const QuarantineRecord &R : Q) {
    ASSERT_FALSE(R.Input.empty());
    EXPECT_TRUE(R.Input[0] == 0xee || R.Input[0] == 0xdd)
        << "quarantined a non-crashing input";
    if (R.Input[0] == 0xee) {
      EXPECT_EQ(R.Site, "worker.execute");
      EXPECT_EQ(R.Signature, "injected worker.execute fault");
      ++Injected;
    } else {
      EXPECT_EQ(R.Site, "") << "a plain exception carries no fault site";
      EXPECT_EQ(R.Signature, "synthetic target crash");
      ++Genuine;
    }
  }
  EXPECT_GT(Injected, 0u);
  EXPECT_GT(Genuine, 0u);
  // Collected at the barrier in (epoch, worker) order — deterministic.
  for (size_t I = 1; I < Q.size(); ++I)
    EXPECT_LE(std::make_pair(Q[I - 1].Epoch, Q[I - 1].Worker),
              std::make_pair(Q[I].Epoch, Q[I].Worker))
        << "quarantine order must be epoch-major, worker-minor";
}

TEST(Quarantine, RunTwiceIsByteIdentical) {
  auto A = makeCrashy(crashyOptions(2));
  auto B = makeCrashy(crashyOptions(2));
  CampaignStats SA = A->run();
  CampaignStats SB = B->run();
  EXPECT_EQ(SA, SB);
  EXPECT_EQ(A->quarantine(), B->quarantine());
  EXPECT_EQ(A->saveState().dump(true), B->saveState().dump(true));
}

TEST(Quarantine, SurvivesSaveAndResumeAtEveryCutoff) {
  // The persist_test contract, now with a quarantine on board: resume
  // from any epoch barrier reproduces the uninterrupted run — records,
  // stats, and snapshot text included.
  auto Full = makeCrashy(crashyOptions(2));
  CampaignStats FullStats = Full->run();
  std::string FullSnap = Full->saveState().dump(true);
  ASSERT_GE(FullStats.Epochs, 2u);
  ASSERT_GT(FullStats.Quarantined, 0u);

  for (uint64_t K = 1; K <= FullStats.Epochs; ++K) {
    auto Cut = makeCrashy(crashyOptions(2, K));
    Cut->run();
    auto Resumed = makeCrashy(crashyOptions(2));
    Error E = Resumed->loadState(throughText(Cut->saveState()));
    ASSERT_FALSE(E) << "cutoff " << K << ": " << E.message();
    CampaignStats S = Resumed->run();
    EXPECT_EQ(S, FullStats) << "stats diverged at cutoff " << K;
    EXPECT_EQ(Resumed->quarantine(), Full->quarantine())
        << "quarantine diverged at cutoff " << K;
    EXPECT_EQ(Resumed->saveState().dump(true), FullSnap)
        << "snapshot diverged at cutoff " << K;
  }
}

//===----------------------------------------------------------------------===//
// Scanner-level quarantine: artifact and replay
//===----------------------------------------------------------------------===//

ScanConfig faultyJsmnConfig(uint64_t MaxEpochs = 0) {
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign.Seed = 5;
  Cfg.Campaign.TotalIterations = 300;
  Cfg.Campaign.Workers = 2;
  Cfg.Campaign.SyncInterval = 32;
  Cfg.Campaign.MaxInputLen = 128;
  Cfg.Campaign.MaxEpochs = MaxEpochs;
  Cfg.FaultPlan = "worker.execute@every:53";
  return Cfg;
}

TEST(Quarantine, ScannerArtifactReplays) {
  Scanner S(faultyJsmnConfig());
  ASSERT_FALSE(S.loadWorkload("jsmn"));
  ASSERT_FALSE(S.rewrite());
  ScanResult R = cantFail(S.run());
  ASSERT_GT(R.Quarantined, 0u) << "every-53rd-execution faults must land";
  EXPECT_EQ(R.Quarantined, S.quarantine().size());
  EXPECT_EQ(R.FaultPlan, "worker.execute@every:53");

  json::Value Artifact = cantFail(S.quarantineJson());
  const json::Value *Schema = Artifact.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), Scanner::QuarantineSchemaName);
  const json::Value *Records = Artifact.find("records");
  ASSERT_NE(Records, nullptr);
  EXPECT_EQ(Records->size(), R.Quarantined);

  // Every record replays: the same input under a one-shot fault at the
  // recorded site reproduces the recorded signature.
  Scanner Replayer(faultyJsmnConfig());
  ASSERT_FALSE(Replayer.loadWorkload("jsmn"));
  ASSERT_FALSE(Replayer.rewrite());
  EXPECT_EQ(cantFail(Replayer.replayQuarantine(throughText(Artifact))),
            R.Quarantined);

  // A tampered signature must be caught, not waved through.
  json::Value Tampered = throughText(Artifact);
  json::Value NewRecords = json::Value::array();
  for (const json::Value &Rec : Tampered.find("records")->items()) {
    json::Value Copy = Rec;
    Copy.set("signature", "someone else's crash");
    NewRecords.push(std::move(Copy));
  }
  Tampered.set("records", std::move(NewRecords));
  auto Bad = Replayer.replayQuarantine(Tampered);
  ASSERT_FALSE(static_cast<bool>(Bad));
  EXPECT_NE(Bad.message().find("recorded"), std::string::npos)
      << "got: " << Bad.message();
}

TEST(Quarantine, ScannerResumeReproducesTheArtifact) {
  Scanner Full(faultyJsmnConfig());
  ASSERT_FALSE(Full.loadWorkload("jsmn"));
  ASSERT_FALSE(Full.rewrite());
  ScanResult FullRes = cantFail(Full.run());
  ASSERT_GT(FullRes.Quarantined, 0u);
  std::string FullArtifact = cantFail(Full.quarantineJson()).dump(true);
  std::string FullSnap = cantFail(Full.saveState()).dump(true);

  Scanner Cut(faultyJsmnConfig(/*MaxEpochs=*/2));
  ASSERT_FALSE(Cut.loadWorkload("jsmn"));
  ASSERT_FALSE(Cut.rewrite());
  ScanResult CutRes = cantFail(Cut.run());
  ASSERT_LT(CutRes.Executions, FullRes.Executions);

  Scanner Resumed(faultyJsmnConfig());
  ASSERT_FALSE(Resumed.loadWorkload("jsmn"));
  ASSERT_FALSE(Resumed.rewrite());
  ASSERT_FALSE(Resumed.resume(throughText(cantFail(Cut.saveState()))));
  ScanResult ResRes = cantFail(Resumed.run());
  EXPECT_EQ(ResRes.Quarantined, FullRes.Quarantined);
  EXPECT_EQ(ResRes.FaultsInjected, FullRes.FaultsInjected);
  EXPECT_EQ(cantFail(Resumed.quarantineJson()).dump(true), FullArtifact);
  EXPECT_EQ(cantFail(Resumed.saveState()).dump(true), FullSnap);
}

TEST(Quarantine, RequestStopFlushesAConsistentState) {
  // The SIGINT path: requestStop() from OnEpoch halts at the barrier
  // with a loadable snapshot, and resuming it completes the scan
  // identically to one that was never interrupted.
  Scanner Full(faultyJsmnConfig());
  ASSERT_FALSE(Full.loadWorkload("jsmn"));
  ASSERT_FALSE(Full.rewrite());
  ScanResult FullRes = cantFail(Full.run());
  std::string FullSnap = cantFail(Full.saveState()).dump(true);

  Scanner S(faultyJsmnConfig());
  ASSERT_FALSE(S.loadWorkload("jsmn"));
  ASSERT_FALSE(S.rewrite());
  S.OnEpoch = [&](const CampaignProgress &) { S.requestStop(); };
  ScanResult Stopped = cantFail(S.run());
  ASSERT_LT(Stopped.Executions, FullRes.Executions)
      << "stop at the first barrier must leave budget unexecuted";

  Scanner Resumed(faultyJsmnConfig());
  ASSERT_FALSE(Resumed.loadWorkload("jsmn"));
  ASSERT_FALSE(Resumed.rewrite());
  ASSERT_FALSE(Resumed.resume(throughText(cantFail(S.saveState()))));
  ScanResult ResRes = cantFail(Resumed.run());
  EXPECT_EQ(ResRes.Executions, FullRes.Executions);
  EXPECT_EQ(ResRes.Quarantined, FullRes.Quarantined);
  EXPECT_EQ(cantFail(Resumed.saveState()).dump(true), FullSnap);
}

//===----------------------------------------------------------------------===//
// Corrupt snapshots: clean diagnostics at every byte
//===----------------------------------------------------------------------===//

TEST(Corruption, TruncationAtEveryByteDiagnosesCleanly) {
  auto C = makeCrashy(crashyOptions(2));
  C->run();
  std::string Text = C->saveState().dump(true);
  ASSERT_GT(Text.size(), 1000u);

  size_t Loadable = 0;
  for (size_t Len = 0; Len < Text.size(); ++Len) {
    auto Parsed = json::parse(Text.substr(0, Len));
    if (!Parsed)
      continue; // clean parse diagnostic — the common case
    auto D = makeCrashy(crashyOptions(2));
    Error E = D->loadState(*Parsed);
    if (!E)
      ++Loadable;
    // Either way: a diagnostic or a success, never a crash — and a
    // failed load leaves the campaign runnable (spot-checked below).
  }
  EXPECT_EQ(Loadable, 0u)
      << "a strict truncation of a snapshot should never load";

  // The full text still loads; this pins the sweep above as meaningful.
  auto D = makeCrashy(crashyOptions(2));
  ASSERT_FALSE(D->loadState(cantFail(json::parse(Text))));
}

TEST(Corruption, BitFlipsDiagnoseCleanlyAndNeverHalfApply) {
  auto Reference = makeCrashy(crashyOptions(2));
  CampaignStats Want = Reference->run();

  auto C = makeCrashy(crashyOptions(2));
  C->run();
  std::string Text = C->saveState().dump(true);

  std::mt19937_64 Rng(0x7ea907);
  for (int Trial = 0; Trial != 200; ++Trial) {
    std::string Damaged = Text;
    size_t Byte = Rng() % Damaged.size();
    Damaged[Byte] ^= uint8_t(1) << (Rng() % 8);
    auto Parsed = json::parse(Damaged);
    if (!Parsed)
      continue;
    auto D = makeCrashy(crashyOptions(2));
    Error E = D->loadState(*Parsed);
    if (!E) {
      // A flip inside an input byte or a free-text field can survive
      // validation; what must never happen is a crash or a half-load.
      continue;
    }
    EXPECT_FALSE(E.message().empty());
    // All-or-nothing: the failed load leaves the campaign pristine.
    CampaignStats Got = D->run();
    EXPECT_EQ(Got, Want) << "half-applied snapshot after flip at byte "
                         << Byte;
  }
}

//===----------------------------------------------------------------------===//
// ScanResult robustness section
//===----------------------------------------------------------------------===//

TEST(ScanResultRobustness, RoundTripsThroughJson) {
  ScanResult R;
  R.Workload = "jsmn";
  R.Preset = "teapot";
  R.FaultPlan = "worker.execute@every:53";
  R.Quarantined = 3;
  R.Degradations = 7;
  R.WatchdogTrips = 2;
  R.FaultsInjected = 41;
  R.IoRetries = 1;
  ScanResult Back = cantFail(ScanResult::fromJsonString(R.toJson().dump(true)));
  EXPECT_EQ(Back.FaultPlan, R.FaultPlan);
  EXPECT_EQ(Back.Quarantined, R.Quarantined);
  EXPECT_EQ(Back.Degradations, R.Degradations);
  EXPECT_EQ(Back.WatchdogTrips, R.WatchdogTrips);
  EXPECT_EQ(Back.FaultsInjected, R.FaultsInjected);
  EXPECT_EQ(Back.IoRetries, R.IoRetries);
  EXPECT_EQ(Back, R);
}

TEST(ScanResultRobustness, ArtifactsWithoutTheSectionReadAsClean) {
  // teapot.scan.v1 artifacts written before the robustness layer have
  // no "robustness" object; they must parse with all-clean defaults.
  ScanResult R;
  R.Workload = "jsmn";
  json::Value V = R.toJson();
  json::Value Old = json::Value::object();
  for (const auto &[Key, Val] : V.members())
    if (Key != "robustness")
      Old.set(Key, Val);
  ScanResult Back = cantFail(ScanResult::fromJsonString(Old.dump(true)));
  EXPECT_EQ(Back.FaultPlan, "");
  EXPECT_EQ(Back.Quarantined, 0u);
  EXPECT_EQ(Back.Degradations, 0u);
  EXPECT_EQ(Back.WatchdogTrips, 0u);
  EXPECT_EQ(Back.FaultsInjected, 0u);
  EXPECT_EQ(Back.IoRetries, 0u);
}

TEST(ScanResultRobustness, BadFaultPlanIsAConfigError) {
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.FaultPlan = "mem.pgae_alloc@1";
  Error E = Cfg.validate();
  ASSERT_TRUE(static_cast<bool>(E));
  EXPECT_NE(E.message().find("fault plan"), std::string::npos)
      << "got: " << E.message();
}

} // namespace
