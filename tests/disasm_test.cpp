//===- tests/disasm_test.cpp - Disassembler + reassembly tests --------------===//

#include "TestUtil.h"
#include "disasm/Disassembler.h"
#include "ir/Layout.h"
#include "isa/Encoding.h"
#include "obj/Layout.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;

namespace {

ir::Module liftOrDie(const obj::ObjectFile &O,
                     disasm::Options Opts = disasm::Options()) {
  auto M = disasm::disassemble(O, Opts);
  EXPECT_TRUE(M) << (M ? "" : M.message());
  if (!M)
    abort();
  return std::move(*M);
}

const char *CallGraphProgram = R"(
.text
main:
    mov r0, 4
    call helper
    cmp r0, 8
    j.eq good
    mov r0, 1
    halt
good:
    mov r0, 0
    halt
helper:
    add r0, r0
    ret
)";

} // namespace

TEST(Disassembler, FunctionAndBlockRecovery) {
  ir::Module M = liftOrDie(assembleOrDie(CallGraphProgram));
  ASSERT_EQ(M.Funcs.size(), 2u);
  EXPECT_EQ(M.Funcs[0].Name, "main"); // symbol names used when present
  EXPECT_EQ(M.Funcs[1].Name, "helper");
  // main: entry block (ends at call), post-call block (ends at jcc),
  // fallthrough block, 'good' block.
  EXPECT_EQ(M.Funcs[0].Blocks.size(), 4u);
  EXPECT_EQ(M.Funcs[1].Blocks.size(), 1u);
  // The call edge resolved to the helper function.
  const ir::Inst *Call = M.Funcs[0].Blocks[0].terminator();
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->Callee, 1u);
  EXPECT_EQ(M.EntryFunc, 0u);
}

TEST(Disassembler, WorksStripped) {
  obj::ObjectFile O = assembleOrDie(CallGraphProgram);
  O.strip();
  ir::Module M = liftOrDie(O);
  ASSERT_EQ(M.Funcs.size(), 2u);
  EXPECT_EQ(M.Funcs[0].Name, "fn_401000"); // synthesized names
}

TEST(Disassembler, RejectsAlreadyInstrumented) {
  using namespace teapot::isa;
  std::vector<uint8_t> Text;
  encode(Instruction::intrinsic(IntrinsicID::StartSim, 0), Text);
  encode(Instruction::halt(), Text);
  obj::ObjectFile Bin;
  Bin.Entry = obj::TextBase;
  Bin.Sections.push_back({".text", obj::SectionKind::Code, obj::TextBase,
                          Text, 0});
  EXPECT_FALSE(disasm::disassemble(Bin));
}

TEST(Disassembler, JumpTableRecovery) {
  ir::Module M = liftOrDie(assembleOrDie(R"(
.text
main:
    mov r0, 2
    cmp r0, 3
    j.a default
    ld8 r1, [r0*8 + table]
    jmpi r1
case0:
    mov r0, 10
    halt
case1:
    mov r0, 11
    halt
case2:
    mov r0, 12
    halt
default:
    mov r0, 99
    halt
.rodata
table:
    .quad case0
    .quad case1
    .quad case2
    .quad default
)"));
  ASSERT_EQ(M.Funcs.size(), 1u);
  // The JMPI block recovered its four indirect successors.
  const ir::BasicBlock *JmpiBlk = nullptr;
  for (const ir::BasicBlock &B : M.Funcs[0].Blocks)
    if (B.terminator() && B.terminator()->I.Op == isa::Opcode::JMPI)
      JmpiBlk = &B;
  ASSERT_NE(JmpiBlk, nullptr);
  EXPECT_EQ(JmpiBlk->IndirectSuccs.size(), 4u);
  // And the table slots were registered for relocation-on-rewrite.
  EXPECT_EQ(M.CodeSlots.size(), 4u);
}

TEST(Disassembler, AddressTakenFunctionViaDataScan) {
  obj::ObjectFile O = assembleOrDie(R"(
.text
main:
    ld8 r1, [fnptr]
    calli r1
    halt
never_called_directly:
    mov r0, 31
    ret
.data
fnptr:
    .quad never_called_directly
)");
  O.strip(); // force discovery through the data scan, not symbols
  ir::Module M = liftOrDie(O);
  EXPECT_EQ(M.Funcs.size(), 2u);
  // The data slot was registered as a function pointer slot.
  ASSERT_EQ(M.CodeSlots.size(), 1u);
  EXPECT_NE(M.CodeSlots[0].Func, ir::NoIdx);
}

TEST(Disassembler, GapSweepFindsUnreachableFunction) {
  obj::ObjectFile O = assembleOrDie(R"(
.text
main:
    halt
orphan:
    mov r0, 1
    ret
)");
  O.strip();
  ir::Module M = liftOrDie(O);
  EXPECT_EQ(M.Funcs.size(), 2u); // orphan found by the gap sweep
}

TEST(Disassembler, FunctionPointerImmediates) {
  ir::Module M = liftOrDie(assembleOrDie(R"(
.text
main:
    mov r1, callee
    calli r1
    halt
callee:
    mov r0, 5
    ret
)"));
  ASSERT_EQ(M.Funcs.size(), 2u);
  const ir::Inst &Mov = M.Funcs[0].Blocks[0].Insts[0];
  EXPECT_NE(Mov.FuncImm, ir::NoIdx);
}

/// The reassembleable-disassembly property: lift + relayout with no
/// transformation preserves program behaviour exactly.
TEST(Reassembly, RoundtripPreservesBehaviour) {
  const char *Programs[] = {CallGraphProgram, R"(
.text
main:
    mov r0, 0
    mov r1, 10
loop:
    add r0, r1
    sub r1, 1
    cmp r1, 0
    j.ne loop
    halt
)"};
  for (const char *Src : Programs) {
    obj::ObjectFile Orig = assembleOrDie(Src);
    RunResult Before = runNative(Orig);

    ir::Module M = liftOrDie(Orig);
    obj::ObjectFile Out;
    auto L = ir::layOut(M, Out);
    ASSERT_TRUE(L) << L.message();
    RunResult After = runNative(Out);

    EXPECT_EQ(Before.Stop.Kind, After.Stop.Kind);
    EXPECT_EQ(Before.Stop.ExitStatus, After.Stop.ExitStatus);
    EXPECT_EQ(Before.Output, After.Output);
  }
}

TEST(Reassembly, JumpTableProgramSurvivesRoundtrip) {
  obj::ObjectFile Orig = assembleOrDie(R"(
.text
main:
    ext 2              ; input_size as the selector (0 here)
    cmp r0, 2
    j.a default
    ld8 r1, [r0*8 + table]
    jmpi r1
c0:
    mov r0, 40
    halt
c1:
    mov r0, 41
    halt
c2:
    mov r0, 42
    halt
default:
    mov r0, 99
    halt
.rodata
table:
    .quad c0
    .quad c1
    .quad c2
)");
  RunResult Before = runNative(Orig);
  ir::Module M = liftOrDie(Orig);
  obj::ObjectFile Out;
  ASSERT_TRUE(ir::layOut(M, Out));
  RunResult After = runNative(Out);
  EXPECT_EQ(Before.Stop.ExitStatus, After.Stop.ExitStatus);
  EXPECT_EQ(After.Stop.ExitStatus, 40u);
}
