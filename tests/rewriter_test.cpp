//===- tests/rewriter_test.cpp - Speculation Shadows end-to-end -------------===//
//
// The heart of the test suite: instrumented binaries must (a) behave
// exactly like the original in normal execution, (b) simulate branch
// mispredictions, and (c) detect the Spectre-V1 gadget families under
// the Kasper policy while rejecting the safe variants.
//
//===----------------------------------------------------------------------===//

#include "Fixtures.h"
#include "TestUtil.h"
#include "workloads/Harness.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::runtime;
using namespace teapot::workloads;

namespace {

core::RewriterOptions teapotOpts() { return {}; }

runtime::RuntimeOptions kasperOpts() {
  RuntimeOptions O;
  O.Nesting = NestingPolicy::Hybrid;
  return O;
}

/// Runs one input through an instrumented binary and returns the target
/// (for report/stat inspection).
std::unique_ptr<InstrumentedTarget> runInstrumented(
    const obj::ObjectFile &Bin, const std::vector<uint8_t> &Input,
    core::RewriterOptions RWOpts, runtime::RuntimeOptions RTOpts) {
  auto RW = core::rewriteBinary(Bin, RWOpts);
  EXPECT_TRUE(RW) << (RW ? "" : RW.message());
  if (!RW)
    abort();
  auto T = std::make_unique<InstrumentedTarget>(*RW, RTOpts);
  T->execute(Input);
  return T;
}

} // namespace

//===----------------------------------------------------------------------===//
// Semantic preservation
//===----------------------------------------------------------------------===//

TEST(Rewriter, PreservesBehaviourAcrossPrograms) {
  struct Case {
    const char *Name;
    obj::ObjectFile Bin;
    std::vector<uint8_t> Input;
  };
  std::vector<Case> Cases;
  Cases.push_back({"v1", compileOrDie(V1Victim), {30}});
  Cases.push_back({"cross", compileOrDie(CrossReturnVictim), {10}});
  Cases.push_back({"fib", compileOrDie(R"(
int fib(int n) { if (n < 2) { return n; } return fib(n-1) + fib(n-2); }
int main() { return fib(10); }
)"),
                   {}});
  Cases.push_back({"echo", compileOrDie(R"(
int main() {
  int n = input_size();
  char *b = malloc(n + 1);
  read_input(b, n);
  int i;
  for (i = 0; i < n; i = i + 1) {
    if (b[i] == 0) { b[i] = 32; }
  }
  write_out(b, n);
  return n;
}
)"),
                   {1, 2, 3, 4, 5}});

  for (Case &C : Cases) {
    RunResult Native = runNative(C.Bin, C.Input);
    ASSERT_EQ(Native.Stop.Kind, vm::StopKind::Halted) << C.Name;

    for (core::RewriteMode Mode :
         {core::RewriteMode::Teapot, core::RewriteMode::SpecFuzzBaseline}) {
      core::RewriterOptions RO;
      RO.Mode = Mode;
      if (Mode == core::RewriteMode::SpecFuzzBaseline)
        RO.EnableDift = false;
      RuntimeOptions RT = kasperOpts();
      if (Mode == core::RewriteMode::SpecFuzzBaseline) {
        RT.EnableDift = false;
        RT.MassagePolicy = false;
      }
      auto T = runInstrumented(C.Bin, C.Input, RO, RT);
      EXPECT_EQ(T->LastStop.Kind, vm::StopKind::Halted)
          << C.Name << " mode " << int(Mode);
      EXPECT_EQ(T->LastStop.ExitStatus, Native.Stop.ExitStatus)
          << C.Name << " mode " << int(Mode);
      EXPECT_EQ(T->M.output(), Native.Output)
          << C.Name << " mode " << int(Mode);
      // And speculation really was simulated along the way.
      EXPECT_GT(T->RT.Stats.Simulations, 0u) << C.Name;
    }
  }
}

TEST(Rewriter, MetaTablesDescribeTheBinary) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  auto RW = rewriteOrDie(Bin, teapotOpts());
  const MetaTable &Meta = RW.Meta;
  EXPECT_LT(Meta.RealTextStart, Meta.RealTextEnd);
  EXPECT_EQ(Meta.RealTextEnd, Meta.ShadowTextStart);
  EXPECT_LT(Meta.ShadowTextStart, Meta.ShadowTextEnd);
  EXPECT_FALSE(Meta.Trampolines.empty());
  EXPECT_FALSE(Meta.FuncMap.empty());
  // Every trampoline lives in the Shadow Copy.
  for (uint64_t T : Meta.Trampolines)
    EXPECT_TRUE(Meta.inShadowText(T));
  // Markers live in the Real Copy, resumes in the Shadow Copy.
  for (uint64_t A : Meta.MarkerSites)
    EXPECT_TRUE(Meta.inRealText(A));
  for (uint64_t A : Meta.MarkerResume)
    EXPECT_TRUE(Meta.inShadowText(A));
  // The metadata blob in the binary parses back to the same table.
  auto It = RW.Binary.Metadata.find(MetaSectionName);
  ASSERT_NE(It, RW.Binary.Metadata.end());
  auto Back = MetaTable::deserialize(It->second);
  ASSERT_TRUE(Back);
  EXPECT_EQ(Back->Trampolines, Meta.Trampolines);
}

//===----------------------------------------------------------------------===//
// Detection
//===----------------------------------------------------------------------===//

TEST(Detection, ClassicV1FoundWithKasperPolicy) {
  // Out-of-bounds index (200): the bounds check skips the access
  // architecturally; simulation must flip it and catch the leak.
  auto T = runInstrumented(compileOrDie(V1Victim), {200}, teapotOpts(),
                           kasperOpts());
  EXPECT_GT(T->RT.Reports.count(Controllability::User, Channel::MDS), 0u)
      << "secret load (MDS) not reported";
  EXPECT_GT(T->RT.Reports.count(Controllability::User, Channel::Cache), 0u)
      << "cache transmitter not reported";
}

TEST(Detection, InBoundsInputStillDetects) {
  // Even an in-bounds input (idx=10) triggers simulation of the wrong
  // path... but idx=10 is in bounds on the wrong path too, so nothing
  // leaks. This guards against false positives on benign runs.
  auto T = runInstrumented(compileOrDie(V1Victim), {10}, teapotOpts(),
                           kasperOpts());
  EXPECT_EQ(T->RT.Reports.unique().size(), 0u);
}

TEST(Detection, CmovVariantIsSafe) {
  auto T = runInstrumented(assembleOrDie(CmovSafeVictim), {200},
                           teapotOpts(), kasperOpts());
  EXPECT_EQ(T->RT.Reports.unique().size(), 0u)
      << "conditional moves are not speculated; no gadget exists";
}

TEST(Detection, LfenceMitigates) {
  auto T = runInstrumented(compileOrDie(FencedVictim), {200}, teapotOpts(),
                           kasperOpts());
  EXPECT_EQ(T->RT.Reports.unique().size(), 0u);
  // The simulation was attempted and rolled back at the fence.
  EXPECT_GT(T->RT.Stats.Rollbacks[static_cast<size_t>(
                isa::RollbackReason::Serializing)],
            0u);
}

TEST(Detection, SpeculationCrossesReturnsViaMarkers) {
  auto T = runInstrumented(compileOrDie(CrossReturnVictim), {200},
                           teapotOpts(), kasperOpts());
  // Detecting this gadget requires simulation to survive the RET from
  // clamp$spec back through the Real-Copy marker into main$spec.
  EXPECT_GT(T->RT.Reports.count(Controllability::User, Channel::MDS), 0u);
  EXPECT_FALSE(T->RT.meta().MarkerSites.empty());
}

TEST(Detection, MassagePolicyFindsIndirectGadgets) {
  auto T = runInstrumented(compileOrDie(MassageVictim), {1}, teapotOpts(),
                           kasperOpts());
  EXPECT_GT(T->RT.Reports.count(Controllability::Massage, Channel::MDS), 0u)
      << "massaged-pointer secret load not reported";
  EXPECT_GT(T->RT.Reports.count(Controllability::Massage, Channel::Port),
            0u)
      << "secret-dependent branch (port contention) not reported";
}

TEST(Detection, MassagePolicyCanBeDisabled) {
  RuntimeOptions RT = kasperOpts();
  RT.MassagePolicy = false;
  auto T = runInstrumented(compileOrDie(MassageVictim), {1}, teapotOpts(),
                           RT);
  EXPECT_EQ(T->RT.Reports.count(Controllability::Massage, Channel::MDS),
            0u);
}

TEST(Detection, NestedGadgetNeedsNestedSimulation) {
  obj::ObjectFile Bin = compileOrDie(NestedVictim);
  RuntimeOptions NoNest = kasperOpts();
  NoNest.Nesting = NestingPolicy::Off;
  auto T1 = runInstrumented(Bin, {200}, teapotOpts(), NoNest);
  EXPECT_EQ(T1->RT.Reports.unique().size(), 0u)
      << "without nesting the duplicated check cannot be bypassed";

  auto T2 = runInstrumented(Bin, {200}, teapotOpts(), kasperOpts());
  EXPECT_GT(T2->RT.Reports.unique().size(), 0u);
  EXPECT_GT(T2->RT.Stats.NestedSimulations, 0u);
}

TEST(Detection, SpecFuzzPolicyReportsRawOOB) {
  core::RewriterOptions RO;
  RO.Mode = core::RewriteMode::SpecFuzzBaseline;
  RO.EnableDift = false;
  RuntimeOptions RT;
  RT.EnableDift = false;
  RT.MassagePolicy = false;
  RT.Nesting = NestingPolicy::SpecFuzz;
  auto T = runInstrumented(compileOrDie(V1Victim), {200}, RO, RT);
  EXPECT_GT(T->RT.Reports.count(Controllability::Unknown, Channel::Asan),
            0u);
}

//===----------------------------------------------------------------------===//
// Runtime mechanics under instrumentation
//===----------------------------------------------------------------------===//

TEST(Rewriter, RollbackRestoresArchitecturalState) {
  // The victim writes to memory on the wrong path; after the campaign
  // the program's outputs must be untouched by speculation.
  const char *Writer = R"(
int g_canary;
int main() {
  char idx8[8];
  read_input(idx8, 1);
  int idx = idx8[0];
  g_canary = 111;
  if (idx < 4) {
    g_canary = 222;  // speculatively executed for idx >= 4
  }
  return g_canary;
}
)";
  obj::ObjectFile Bin = compileOrDie(Writer);
  RunResult Native = runNative(Bin, {77});
  auto T = runInstrumented(Bin, {77}, teapotOpts(), kasperOpts());
  EXPECT_EQ(T->LastStop.ExitStatus, Native.Stop.ExitStatus);
  EXPECT_EQ(T->LastStop.ExitStatus, 111u);
  EXPECT_GT(T->RT.Stats.Simulations, 0u);
}

TEST(Rewriter, InstructionBudgetBoundsSimulation) {
  // An infinite loop on the wrong path must be cut off by the reorder
  // buffer budget (250 instructions), not hang the run.
  const char *Spinner = R"(
int main() {
  char b[8];
  read_input(b, 1);
  int x = b[0];
  int acc = 0;
  if (x < 4) {
    while (1) { acc = acc + 1; }
  }
  return acc;
}
)";
  auto T = runInstrumented(compileOrDie(Spinner), {200}, teapotOpts(),
                           kasperOpts());
  EXPECT_EQ(T->LastStop.Kind, vm::StopKind::Halted);
  EXPECT_GT(T->RT.Stats.Rollbacks[static_cast<size_t>(
                isa::RollbackReason::InstBudget)],
            0u);
}

TEST(Rewriter, ExternalCallsTerminateSimulation) {
  const char *Caller = R"(
int main() {
  char b[8];
  read_input(b, 1);
  int x = b[0];
  if (x < 4) {
    char *p = malloc(8);  // external call on the wrong path
    p[0] = 1;
  }
  return 0;
}
)";
  auto T = runInstrumented(compileOrDie(Caller), {200}, teapotOpts(),
                           kasperOpts());
  EXPECT_GT(T->RT.Stats.Rollbacks[static_cast<size_t>(
                isa::RollbackReason::ExternalCall)],
            0u);
}

TEST(Rewriter, GuestFaultsRollBackInsteadOfCrashing) {
  const char *Wild = R"(
int main() {
  char b[8];
  read_input(b, 8);
  int x = b[0];
  char *p = 0;
  if (x < 4) {
    // Wild dereference at a non-canonical address on the wrong path.
    p = p + 824633720832; // 0xC000000000: inside the shadow gap
    return p[0];
  }
  return 7;
}
)";
  auto T = runInstrumented(compileOrDie(Wild), {200}, teapotOpts(),
                           kasperOpts());
  EXPECT_EQ(T->LastStop.Kind, vm::StopKind::Halted);
  EXPECT_EQ(T->LastStop.ExitStatus, 7u);
  EXPECT_GT(T->RT.Stats.Rollbacks[static_cast<size_t>(
                isa::RollbackReason::GuestFault)],
            0u);
}

TEST(Rewriter, CoverageTracksBothModes) {
  auto T = runInstrumented(compileOrDie(V1Victim), {30}, teapotOpts(),
                           kasperOpts());
  EXPECT_GT(T->RT.Cov.normalCovered(), 0u);
  EXPECT_GT(T->RT.Cov.specCovered(), 0u);
}

TEST(Rewriter, LazyAndEagerSpecCoverageAgree) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  RuntimeOptions Lazy = kasperOpts();
  Lazy.LazySpecCoverage = true;
  RuntimeOptions Eager = kasperOpts();
  Eager.LazySpecCoverage = false;
  auto T1 = runInstrumented(Bin, {30}, teapotOpts(), Lazy);
  auto T2 = runInstrumented(Bin, {30}, teapotOpts(), Eager);
  EXPECT_EQ(T1->RT.Cov.specCovered(), T2->RT.Cov.specCovered());
}

TEST(Rewriter, AvxCheckpointOptionPreservesSemantics) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  RuntimeOptions Avx = kasperOpts();
  Avx.AvxCheckpoint = true;
  auto T = runInstrumented(Bin, {30}, teapotOpts(), Avx);
  EXPECT_EQ(T->LastStop.Kind, vm::StopKind::Halted);
}

TEST(Rewriter, HeuristicStatisticsAccumulateAcrossRuns) {
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  auto RW = rewriteOrDie(Bin, teapotOpts());
  RuntimeOptions RT = kasperOpts();
  RT.Nesting = NestingPolicy::SpecFuzz;
  InstrumentedTarget T(RW, RT);
  T.execute({10});
  uint64_t After1 = T.RT.Stats.Simulations;
  T.execute({20});
  EXPECT_GT(T.RT.Stats.Simulations, After1)
      << "per-branch heuristic state persists across runs";
}

TEST(Rewriter, JumpTableProgramInstrumentedCorrectly) {
  // Switch via jump table: indirect jumps in the Shadow Copy must bounce
  // through markers instead of corrupting control flow.
  lang::CompileOptions CO;
  CO.Switches = lang::SwitchLowering::JumpTable;
  obj::ObjectFile Bin = compileOrDie(SwitchProg, CO);
  RunResult Native = runNative(Bin, {2});
  auto T = runInstrumented(Bin, {2}, teapotOpts(), kasperOpts());
  EXPECT_EQ(T->LastStop.ExitStatus, Native.Stop.ExitStatus);
  EXPECT_EQ(T->LastStop.ExitStatus, 12u);
}
