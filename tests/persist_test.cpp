//===- tests/persist_test.cpp - Campaign snapshot/resume tests --------------===//
//
// The persistence contracts under test (docs/FUZZING.md):
//
//   1. Round-trip: dump ∘ parse ∘ dump of a teapot.corpus.v1 snapshot
//      is byte-identical, and loading a snapshot into a fresh campaign
//      reproduces the same snapshot byte for byte.
//   2. Resume determinism: a campaign saved at *any* epoch barrier and
//      resumed produces corpus, coverage, gadget set, and per-worker
//      stats byte-identical to the uninterrupted run — at every cutoff,
//      for 1/2/3 workers, on synthetic and real instrumented targets.
//   3. Version/corruption rejection: wrong schema, mismatched options,
//      and damaged payloads are diagnosed errors, never half-applied.
//
//===----------------------------------------------------------------------===//

#include "Fixtures.h"
#include "TestUtil.h"
#include "api/Scanner.h"
#include "fuzz/Campaign.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <gtest/gtest.h>

using namespace teapot;
using namespace teapot::testutil;
using namespace teapot::fuzz;

namespace {

/// Synthetic detector-bearing target (same shape as campaign_test's):
/// coverage guards fire per input byte, and inputs starting with 0xab
/// report a gadget — so snapshots carry non-trivial corpus, coverage,
/// and gadget state without the cost of a real VM.
class GadgetyTarget : public FuzzTarget {
public:
  GadgetyTarget() : Normal(40, 0), Spec(1, 0) {}

  void execute(const std::vector<uint8_t> &Input) override {
    std::fill(Normal.begin(), Normal.end(), 0);
    Normal[0] = 1;
    if (!Input.empty())
      Normal[1 + Input[0] % 32] = 1;
    if (Input.size() >= 2 && Input[0] == 0xab) {
      runtime::GadgetReport R;
      R.Site = 0x1000 + Input[1] % 4;
      R.Chan = runtime::Channel::Cache;
      R.Ctrl = runtime::Controllability::User;
      Sink.report(R);
    }
  }
  const std::vector<uint8_t> &normalCoverage() const override {
    return Normal;
  }
  const std::vector<uint8_t> &specCoverage() const override { return Spec; }
  const runtime::ReportSink *reports() const override { return &Sink; }

  runtime::ReportSink Sink;

private:
  std::vector<uint8_t> Normal, Spec;
};

CampaignOptions syntheticOptions(unsigned Workers) {
  CampaignOptions CO;
  CO.Seed = 7;
  CO.TotalIterations = 3000;
  CO.Workers = Workers;
  CO.SyncInterval = 256;
  CO.MaxInputLen = 16;
  return CO;
}

std::unique_ptr<Campaign> makeSynthetic(CampaignOptions CO) {
  auto C = std::make_unique<Campaign>(
      [] { return std::make_unique<GadgetyTarget>(); }, CO);
  C->addSeed({0xab, 0});
  C->addSeed({'s', 'e', 'e', 'd'});
  return C;
}

/// Serializes a snapshot through its on-disk text form — the round the
/// CLI takes — and asserts text stability before handing it back.
json::Value throughText(const json::Value &Snapshot) {
  std::string Text = Snapshot.dump(true);
  auto Parsed = json::parse(Text);
  EXPECT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->dump(true), Text)
      << "dump-parse-dump must be byte-identical";
  return *Parsed;
}

} // namespace

//===----------------------------------------------------------------------===//
// Round-trip
//===----------------------------------------------------------------------===//

TEST(Persist, SnapshotRoundTripIsByteIdentical) {
  auto C = makeSynthetic(syntheticOptions(2));
  C->run();
  json::Value Snap = C->saveState();
  std::string Text = Snap.dump(true);
  auto Parsed = json::parse(Text);
  ASSERT_TRUE(static_cast<bool>(Parsed)) << Parsed.message();
  EXPECT_EQ(Parsed->dump(true), Text);

  const json::Value *Schema = Snap.find("schema");
  ASSERT_NE(Schema, nullptr);
  EXPECT_EQ(Schema->asString(), "teapot.corpus.v1");
}

TEST(Persist, LoadedCampaignReproducesTheSnapshot) {
  auto C = makeSynthetic(syntheticOptions(3));
  C->run();
  json::Value Snap = C->saveState();

  auto D = makeSynthetic(syntheticOptions(3));
  Error E = D->loadState(throughText(Snap));
  ASSERT_FALSE(E) << E.message();
  EXPECT_EQ(D->saveState().dump(true), Snap.dump(true))
      << "load ∘ save must be the identity";
  EXPECT_EQ(D->corpus(), C->corpus());
}

//===----------------------------------------------------------------------===//
// Resume determinism
//===----------------------------------------------------------------------===//

namespace {

/// Runs the uninterrupted campaign, then for every epoch cutoff k:
/// run-to-k, snapshot, serialize through text, load into a fresh
/// campaign, run to completion — and require byte-identical corpus,
/// merged snapshot, gadget set, and per-worker stats.
template <typename MakeCampaign>
void checkEveryCutoff(MakeCampaign Make) {
  auto Full = Make(0);
  CampaignStats FullStats = Full->run();
  std::string FullSnap = Full->saveState().dump(true);
  ASSERT_GE(FullStats.Epochs, 2u) << "need multiple epochs to cut at";

  for (uint64_t K = 1; K <= FullStats.Epochs; ++K) {
    auto Cut = Make(K);
    CampaignStats CutStats = Cut->run();
    EXPECT_EQ(CutStats.Epochs, K);
    if (K < FullStats.Epochs)
      EXPECT_LT(CutStats.Executions, FullStats.Executions);

    auto Resumed = Make(0);
    Error E = Resumed->loadState(throughText(Cut->saveState()));
    ASSERT_FALSE(E) << "cutoff " << K << ": " << E.message();
    CampaignStats ResumedStats = Resumed->run();

    EXPECT_EQ(ResumedStats, FullStats) << "stats diverged at cutoff " << K;
    EXPECT_EQ(Resumed->corpus(), Full->corpus())
        << "corpus diverged at cutoff " << K;
    EXPECT_EQ(Resumed->gadgets().unique(), Full->gadgets().unique())
        << "gadgets diverged at cutoff " << K;
    EXPECT_EQ(Resumed->saveState().dump(true), FullSnap)
        << "snapshot diverged at cutoff " << K;
  }
}

} // namespace

TEST(Persist, ResumeIsByteIdenticalAtEveryCutoffOneWorker) {
  checkEveryCutoff([](uint64_t MaxEpochs) {
    CampaignOptions CO = syntheticOptions(1);
    CO.MaxEpochs = MaxEpochs;
    return makeSynthetic(CO);
  });
}

TEST(Persist, ResumeIsByteIdenticalAtEveryCutoffTwoWorkers) {
  checkEveryCutoff([](uint64_t MaxEpochs) {
    CampaignOptions CO = syntheticOptions(2);
    CO.MaxEpochs = MaxEpochs;
    return makeSynthetic(CO);
  });
}

TEST(Persist, ResumeIsByteIdenticalAtEveryCutoffThreeWorkers) {
  checkEveryCutoff([](uint64_t MaxEpochs) {
    CampaignOptions CO = syntheticOptions(3);
    CO.MaxEpochs = MaxEpochs;
    return makeSynthetic(CO);
  });
}

TEST(Persist, ResumeIsByteIdenticalOnInstrumentedJsmn) {
  // The real thing: a rewritten workload under the SpecRuntime, whose
  // cross-run state (nesting-heuristic counters, accumulated coverage,
  // report sink) must survive the snapshot for the resumed campaign to
  // stay byte-identical.
  const workloads::Workload &W = *workloads::findWorkload("jsmn");
  obj::ObjectFile Bin = compileOrDie(W.Source);
  Bin.strip();
  auto RW = rewriteOrDie(Bin);
  runtime::RuntimeOptions RT;

  auto Make = [&](uint64_t MaxEpochs) {
    CampaignOptions CO;
    CO.Seed = 21;
    CO.TotalIterations = 160;
    CO.Workers = 2;
    CO.SyncInterval = 20;
    CO.MaxInputLen = 128;
    CO.MaxEpochs = MaxEpochs;
    auto C = std::make_unique<Campaign>(
        workloads::instrumentedTargetFactory(RW, RT), CO);
    for (const auto &Seed : W.Seeds())
      C->addSeed(Seed);
    return C;
  };
  checkEveryCutoff(Make);
}

TEST(Persist, ResumeIsByteIdenticalOnEmulatorTarget) {
  // The SpecTaint baseline also carries cross-run state (per-branch try
  // counters steering later simulations, the report sink); its snapshot
  // path must keep emulator campaigns resumable too.
  obj::ObjectFile Bin = compileOrDie(V1Victim);
  auto Make = [&](uint64_t MaxEpochs) {
    CampaignOptions CO;
    CO.Seed = 9;
    CO.TotalIterations = 60;
    CO.Workers = 2;
    CO.SyncInterval = 10;
    CO.MaxInputLen = 32;
    CO.MaxEpochs = MaxEpochs;
    auto C = std::make_unique<Campaign>(
        workloads::emulatorTargetFactory(Bin, {}), CO);
    C->addSeed({1});
    return C;
  };
  checkEveryCutoff(Make);
}

TEST(Persist, ResumeAtTheMaxEpochsBarrierRunsNothing) {
  // MaxEpochs is absolute: resuming a snapshot already at (or past)
  // the barrier must not execute another epoch — "run to epoch k,
  // save" composes with "resume to epoch k".
  CampaignOptions CO = syntheticOptions(2);
  CO.MaxEpochs = 2;
  auto Cut = makeSynthetic(CO);
  CampaignStats CutStats = Cut->run();
  ASSERT_EQ(CutStats.Epochs, 2u);
  json::Value Snap = Cut->saveState();

  auto Resumed = makeSynthetic(CO); // same MaxEpochs = 2
  ASSERT_FALSE(Resumed->loadState(Snap));
  CampaignStats S = Resumed->run();
  EXPECT_EQ(S, CutStats) << "an extra epoch ran past the barrier";
  EXPECT_EQ(Resumed->saveState().dump(true), Snap.dump(true));
}

TEST(Persist, RunAfterAResumedRunStartsAfresh) {
  // loadState() arms exactly one continuing run(); the call after that
  // must reproduce a fresh campaign (the class's re-runnability
  // contract), not return stale stats from the finished resumed state.
  auto Reference = makeSynthetic(syntheticOptions(2));
  CampaignStats Fresh = Reference->run();

  CampaignOptions CO = syntheticOptions(2);
  CO.MaxEpochs = 1;
  auto Cut = makeSynthetic(CO);
  Cut->run();

  auto C = makeSynthetic(syntheticOptions(2));
  ASSERT_FALSE(C->loadState(Cut->saveState()));
  C->run();               // the armed, continuing run
  CampaignStats S = C->run(); // must start afresh
  EXPECT_EQ(S, Fresh);
  EXPECT_EQ(C->corpus(), Reference->corpus());
}

TEST(Persist, ResumedCampaignCompletesTheBudgetExactly) {
  CampaignOptions CO = syntheticOptions(2);
  CO.MaxEpochs = 1;
  auto Cut = makeSynthetic(CO);
  CampaignStats CutStats = Cut->run();
  ASSERT_LT(CutStats.Executions, CO.TotalIterations);

  CO.MaxEpochs = 0;
  auto Resumed = makeSynthetic(CO);
  ASSERT_FALSE(Resumed->loadState(Cut->saveState()));
  CampaignStats S = Resumed->run();
  EXPECT_EQ(S.Executions, CO.TotalIterations);
}

TEST(Persist, RaisingTheBudgetExtendsAFinishedCampaign) {
  CampaignOptions CO = syntheticOptions(2);
  auto C = makeSynthetic(CO);
  CampaignStats First = C->run();
  EXPECT_EQ(First.Executions, CO.TotalIterations);
  json::Value Snap = C->saveState();

  CO.TotalIterations = 4000;
  auto Extended = makeSynthetic(CO);
  ASSERT_FALSE(Extended->loadState(Snap));
  CampaignStats S = Extended->run();
  EXPECT_EQ(S.Executions, 4000u);
  EXPECT_GE(S.Epochs, First.Epochs);
}

TEST(Persist, ResumingAFinishedCampaignIsTheIdentity) {
  auto C = makeSynthetic(syntheticOptions(2));
  CampaignStats Full = C->run();
  json::Value Snap = C->saveState();

  auto D = makeSynthetic(syntheticOptions(2));
  ASSERT_FALSE(D->loadState(Snap));
  CampaignStats S = D->run();
  EXPECT_EQ(S, Full) << "a finished campaign must not add epochs";
  EXPECT_EQ(D->saveState().dump(true), Snap.dump(true));
}

TEST(Persist, RequestStopHaltsAtTheNextBarrier) {
  CampaignOptions CO = syntheticOptions(2);
  auto C = makeSynthetic(CO);
  uint64_t SeenEpochs = 0;
  C->OnEpoch = [&](const CampaignProgress &P) {
    SeenEpochs = P.Epoch;
    C->requestStop();
  };
  CampaignStats S = C->run();
  EXPECT_EQ(SeenEpochs, 1u);
  EXPECT_EQ(S.Epochs, 1u);
  EXPECT_LT(S.Executions, CO.TotalIterations);
}

//===----------------------------------------------------------------------===//
// Version / corruption rejection
//===----------------------------------------------------------------------===//

namespace {

/// Takes a valid snapshot, lets \p Mutate damage it, and expects
/// loadState to produce an error mentioning \p ExpectSubstring.
void expectRejected(const std::function<void(json::Value &)> &Mutate,
                    const char *ExpectSubstring) {
  auto C = makeSynthetic(syntheticOptions(2));
  C->run();
  json::Value Snap = C->saveState();
  Mutate(Snap);
  auto D = makeSynthetic(syntheticOptions(2));
  Error E = D->loadState(Snap);
  ASSERT_TRUE(static_cast<bool>(E)) << "expected rejection";
  EXPECT_NE(E.message().find(ExpectSubstring), std::string::npos)
      << "got: " << E.message();
}

} // namespace

TEST(Persist, RejectsUnknownSchemaVersion) {
  expectRejected([](json::Value &V) { V.set("schema", "teapot.corpus.v2"); },
                 "unsupported schema");
  expectRejected([](json::Value &V) { V.set("schema", json::Value()); },
                 "schema");
}

TEST(Persist, RejectsOptionMismatches) {
  // Every option that feeds the RNG stream or the sync protocol must
  // match the resuming campaign; the snapshot names the culprit.
  auto SetOpt = [](json::Value &V, const char *Key, uint64_t New) {
    json::Value O = *V.find("options");
    O.set(Key, New);
    V.set("options", std::move(O));
  };
  expectRejected([&](json::Value &V) { SetOpt(V, "seed", 99); },
                 "seed mismatch");
  expectRejected([&](json::Value &V) { SetOpt(V, "workers", 3); },
                 "worker-count mismatch");
  expectRejected([&](json::Value &V) { SetOpt(V, "sync_interval", 64); },
                 "sync-interval mismatch");
  expectRejected([&](json::Value &V) { SetOpt(V, "max_input_len", 4096); },
                 "mutation-knob mismatch");
}

TEST(Persist, RejectsCorruptPayloads) {
  // Damaged corpus entry (odd-length hex).
  expectRejected(
      [](json::Value &V) {
        json::Value C = json::Value::array();
        C.push("abc"); // odd length
        V.set("corpus", std::move(C));
      },
      "corpus");
  // Worker record count disagrees with the options.
  expectRejected(
      [](json::Value &V) {
        json::Value W = json::Value::array();
        V.set("workers", std::move(W));
      },
      "worker records");
  // Gadget with an unknown channel spelling.
  expectRejected(
      [](json::Value &V) {
        json::Value G = json::Value::object();
        G.set("site", 1);
        G.set("channel", "Microwave");
        G.set("controllability", "User");
        G.set("branch", 0);
        G.set("depth", 0);
        json::Value A = json::Value::array();
        A.push(std::move(G));
        V.set("gadgets", std::move(A));
      },
      "unknown channel");
  // Missing epoch counter.
  expectRejected([](json::Value &V) { V.set("epoch", json::Value()); },
                 "epoch");
  // Truncated (but valid-hex) shard coverage map: the edge counters no
  // longer match the map's nonzero count.
  expectRejected(
      [](json::Value &V) {
        json::Value WArr = *V.find("workers");
        json::Value W0 = WArr.items()[0];
        json::Value Sh = *W0.find("shard");
        std::string Map = Sh.find("normal")->asString();
        Sh.set("normal", Map.substr(0, Map.size() / 2));
        W0.set("shard", std::move(Sh));
        json::Value NewArr = json::Value::array();
        NewArr.push(std::move(W0));
        for (size_t I = 1; I < WArr.size(); ++I)
          NewArr.push(WArr.items()[I]);
        V.set("workers", std::move(NewArr));
      },
      "edge counters disagree");
}

TEST(Persist, RejectedLoadLeavesTheCampaignRunnable) {
  // A rejected snapshot must not half-apply: the campaign still runs
  // fresh afterwards and reproduces a normal run.
  auto Reference = makeSynthetic(syntheticOptions(2));
  CampaignStats Want = Reference->run();

  auto C = makeSynthetic(syntheticOptions(2));
  json::Value Bad = json::Value::object();
  Bad.set("schema", "teapot.corpus.v1");
  EXPECT_TRUE(static_cast<bool>(C->loadState(Bad)));
  CampaignStats Got = C->run();
  EXPECT_EQ(Got, Want);
}

//===----------------------------------------------------------------------===//
// Scanner-level save/resume
//===----------------------------------------------------------------------===//

TEST(Persist, ScannerSaveStateRequiresARun) {
  Scanner S(cantFail(ScanConfig::preset("teapot")));
  auto Snap = S.saveState();
  EXPECT_FALSE(static_cast<bool>(Snap));
  EXPECT_NE(Snap.message().find("run() first"), std::string::npos);
}

TEST(Persist, ScannerFailedResumeStaysFailedOnRetry) {
  // A snapshot that fails to load must keep failing on a retried
  // run(): silently falling back to a fresh campaign would hand the
  // caller a from-scratch result disguised as the resumed one. And the
  // previous campaign's state must survive the failure — saveState()
  // still snapshots the last successful run.
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign.TotalIterations = 60;
  Cfg.Campaign.MaxInputLen = 64;
  Scanner S(Cfg);
  ASSERT_FALSE(S.loadWorkload("jsmn"));
  ASSERT_FALSE(S.rewrite());
  ASSERT_TRUE(static_cast<bool>(S.run()));
  std::string Good = cantFail(S.saveState()).dump(true);

  json::Value Bad = json::Value::object();
  Bad.set("schema", "teapot.corpus.v1"); // passes resume()'s light check
  ASSERT_FALSE(S.resume(Bad));
  auto First = S.run();
  ASSERT_FALSE(static_cast<bool>(First));
  auto Second = S.run();
  ASSERT_FALSE(static_cast<bool>(Second))
      << "retry after failed resume ran a fresh campaign";
  EXPECT_EQ(cantFail(S.saveState()).dump(true), Good)
      << "failed resume clobbered the previous campaign";
}

TEST(Persist, ScannerResumeMatchesUninterruptedScan) {
  auto Configure = [](uint64_t MaxEpochs) {
    ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
    Cfg.Campaign.Seed = 5;
    Cfg.Campaign.TotalIterations = 150;
    Cfg.Campaign.Workers = 2;
    Cfg.Campaign.SyncInterval = 20;
    Cfg.Campaign.MaxInputLen = 128;
    Cfg.Campaign.MaxEpochs = MaxEpochs;
    return Cfg;
  };

  Scanner Full(Configure(0));
  ASSERT_FALSE(Full.loadWorkload("jsmn"));
  ASSERT_FALSE(Full.rewrite());
  auto FullRes = Full.run();
  ASSERT_TRUE(static_cast<bool>(FullRes)) << FullRes.message();
  std::string FullSnap = cantFail(Full.saveState()).dump(true);

  Scanner Cut(Configure(2));
  ASSERT_FALSE(Cut.loadWorkload("jsmn"));
  ASSERT_FALSE(Cut.rewrite());
  auto CutRes = Cut.run();
  ASSERT_TRUE(static_cast<bool>(CutRes)) << CutRes.message();
  ASSERT_LT(CutRes->Executions, FullRes->Executions);
  json::Value Snap = cantFail(Cut.saveState());

  Scanner Resumed(Configure(0));
  ASSERT_FALSE(Resumed.loadWorkload("jsmn"));
  ASSERT_FALSE(Resumed.rewrite());
  ASSERT_FALSE(Resumed.resume(throughText(Snap)));
  auto ResRes = Resumed.run();
  ASSERT_TRUE(static_cast<bool>(ResRes)) << ResRes.message();

  EXPECT_EQ(ResRes->Executions, FullRes->Executions);
  EXPECT_EQ(ResRes->Epochs, FullRes->Epochs);
  EXPECT_EQ(ResRes->CorpusSize, FullRes->CorpusSize);
  EXPECT_EQ(ResRes->Gadgets, FullRes->Gadgets);
  EXPECT_EQ(ResRes->PerWorker, FullRes->PerWorker);
  EXPECT_EQ(Resumed.corpus(), Full.corpus());
  EXPECT_EQ(cantFail(Resumed.saveState()).dump(true), FullSnap);
}

TEST(Persist, ScannerImportCorpusSeedsAFreshCampaign) {
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign.TotalIterations = 120;
  Cfg.Campaign.SyncInterval = 20;
  Cfg.Campaign.MaxInputLen = 128;

  Scanner First(Cfg);
  ASSERT_FALSE(First.loadWorkload("jsmn"));
  ASSERT_FALSE(First.rewrite());
  ASSERT_TRUE(static_cast<bool>(First.run()));
  json::Value Snap = cantFail(First.saveState());
  size_t PriorCorpus = First.corpus().size();
  ASSERT_GT(PriorCorpus, 0u);

  // A corrupt snapshot must not half-apply its prefix.
  {
    Scanner Broken(Cfg);
    ASSERT_FALSE(Broken.loadWorkload("jsmn"));
    json::Value Corrupt = Snap; // deep copy
    json::Value C = *Corrupt.find("corpus");
    C.push("abc"); // odd-length hex at the end
    Corrupt.set("corpus", std::move(C));
    auto R = Broken.importCorpus(Corrupt);
    ASSERT_FALSE(static_cast<bool>(R));
    EXPECT_TRUE(Broken.importedSeeds().empty())
        << "failed import adopted a prefix of the corpus";
  }

  Scanner Second(Cfg);
  ASSERT_FALSE(Second.loadWorkload("jsmn"));
  ASSERT_FALSE(Second.rewrite());
  size_t BaseSeeds = Second.seeds().size();
  auto N = Second.importCorpus(Snap);
  ASSERT_TRUE(static_cast<bool>(N)) << N.message();
  EXPECT_EQ(*N, PriorCorpus);
  EXPECT_EQ(Second.seeds().size(), BaseSeeds)
      << "imports must not pollute the regular seed corpus";
  EXPECT_EQ(Second.importedSeeds().size(), PriorCorpus);
  auto Res = Second.run();
  ASSERT_TRUE(static_cast<bool>(Res)) << Res.message();
  // Every imported entry re-executes as a seed.
  EXPECT_GE(Res->CorpusSize, BaseSeeds + PriorCorpus);
}

TEST(Persist, ImportCorpusRejectsMismatchedOptions) {
  // The import compatibility gate: a corpus recorded under different
  // input-geometry knobs (MaxInputLen / MaxStackedMutations) must be a
  // diagnosed error, not silently truncated or mis-mutated seeds.
  ScanConfig Cfg = cantFail(ScanConfig::preset("teapot"));
  Cfg.Campaign.TotalIterations = 120;
  Cfg.Campaign.SyncInterval = 20;
  Cfg.Campaign.MaxInputLen = 128;

  Scanner Donor(Cfg);
  ASSERT_FALSE(Donor.loadWorkload("jsmn"));
  ASSERT_FALSE(Donor.rewrite());
  ASSERT_TRUE(static_cast<bool>(Donor.run()));
  json::Value Snap = cantFail(Donor.saveState());

  auto ExpectRejected = [&](const json::Value &Doc, const char *What) {
    Scanner S(Cfg);
    ASSERT_FALSE(S.loadWorkload("jsmn"));
    auto R = S.importCorpus(Doc);
    ASSERT_FALSE(static_cast<bool>(R)) << What;
    EXPECT_NE(R.message().find("incompatible options"), std::string::npos)
        << What << ": got \"" << R.message() << '"';
    EXPECT_TRUE(S.importedSeeds().empty())
        << What << ": rejected import still adopted seeds";
  };

  {
    json::Value Doc = Snap; // deep copy
    json::Value Opts = *Doc.find("options");
    Opts.set("max_input_len", uint64_t(64));
    Doc.set("options", std::move(Opts));
    ExpectRejected(Doc, "max_input_len mismatch");
  }
  {
    json::Value Doc = Snap;
    json::Value Opts = *Doc.find("options");
    Opts.set("max_stacked_mutations", uint64_t(3));
    Doc.set("options", std::move(Opts));
    ExpectRejected(Doc, "max_stacked_mutations mismatch");
  }
  {
    // No options at all: the gate cannot run, so the import must fail.
    json::Value Doc = json::Value::object();
    Doc.set("schema", fuzz::Campaign::SnapshotSchemaName);
    Doc.set("corpus", json::Value::array());
    Scanner S(Cfg);
    ASSERT_FALSE(S.loadWorkload("jsmn"));
    auto R = S.importCorpus(Doc);
    ASSERT_FALSE(static_cast<bool>(R));
    EXPECT_NE(R.message().find("options"), std::string::npos);
  }

  // Seed/workers/budget may legitimately differ — only geometry gates.
  {
    ScanConfig Other = Cfg;
    Other.Campaign.Seed = 99;
    Other.Campaign.Workers = 2;
    Other.Campaign.TotalIterations = 240;
    Scanner S(Other);
    ASSERT_FALSE(S.loadWorkload("jsmn"));
    auto R = S.importCorpus(Snap);
    ASSERT_TRUE(static_cast<bool>(R)) << R.message();
    EXPECT_EQ(*R, Donor.corpus().size());
  }
}
