//===- examples/compiler_gadgets.cpp - The Figure 2 story, live -------------===//
//
// Demonstrates why binary-level analysis matters (Section 3.2): the same
// switch statement compiles to a compare-and-branch cascade under one
// compiler (each comparison a Spectre-V1 victim) and to a bounds-checked
// jump table under another (V1-safe dispatch). A source-level tool
// analyzing the "wrong" build reports the wrong answer for the deployed
// binary; Teapot scans exactly what ships.
//
//   $ ./compiler_gadgets
//
//===----------------------------------------------------------------------===//

#include "api/Scanner.h"

#include <cstdio>

using namespace teapot;

static const char *Source = R"(
int g_out;
int pick(char *t, int idx) {
  // The case selection is the only thing keeping idx in bounds: each
  // case body indexes the 64-byte table at idx*16. Mistraining a case
  // comparison executes a body with an out-of-range idx.
  switch (idx) {
    case 0: { g_out = t[idx * 16]; break; }
    case 1: { g_out = t[idx * 16 + 1]; break; }
    case 2: { g_out = t[idx * 16 + 2]; break; }
    case 3: { g_out = t[idx * 16 + 3]; break; }
    default: { g_out = -1; break; }
  }
  return g_out;
}
int main() {
  char req[8];
  read_input(req, 1);
  char *t = malloc(64);
  int acc = pick(t, req[0]);
  return acc & 63;
}
)";

static void scan(const char *Label, lang::SwitchLowering SL) {
  support::ExitOnError Exit("compiler_gadgets: ");
  lang::CompileOptions CO;
  CO.Switches = SL;

  // One-worker campaigns are byte-identical to the classic
  // single-threaded fuzzer, so this reproduces the original experiment.
  ScanConfig Cfg = Exit(ScanConfig::preset("teapot"));
  Cfg.Campaign.Seed = 9;
  Cfg.Campaign.TotalIterations = 300;
  Cfg.Campaign.Workers = 1;
  Cfg.Campaign.MaxInputLen = 8;

  Scanner S(Cfg);
  Exit(S.loadSource(Source, CO));
  Exit(S.rewrite());
  for (uint8_t Idx : {0, 1, 2, 3, 9, 200})
    S.addSeed({Idx});
  ScanResult R = Exit(S.run());

  printf("%-22s: %2llu conditional-branch sites, %2zu gadgets\n", Label,
         static_cast<unsigned long long>(R.BranchSites), R.Gadgets.size());
  for (const auto &G : R.Gadgets)
    printf("    %s\n", G.describe().c_str());
}

int main() {
  printf("One switch statement, two compilers (Figure 2):\n\n");
  scan("GCC-style branches", lang::SwitchLowering::Branches);
  scan("Clang-style jump table", lang::SwitchLowering::JumpTable);
  printf("\nThe cascade build exposes per-case conditional branches to "
         "mistraining;\nthe jump-table dispatch cannot be trained "
         "per-case. Analyze the binary you ship.\n");
  return 0;
}
