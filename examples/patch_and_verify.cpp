//===- examples/patch_and_verify.cpp - Find, patch with lfence, re-scan -----===//
//
// The remediation loop a Teapot user runs: scan a binary, find a
// Spectre-V1 gadget, patch the vulnerable bounds check with a serializing
// fence (the standard lfence mitigation), and re-scan to verify the
// gadget is gone — the workflow Section 6.2.3's SpecFuzz-compatible
// report format exists to support.
//
//   $ ./patch_and_verify
//
//===----------------------------------------------------------------------===//

#include "api/Scanner.h"

#include <cstdio>

using namespace teapot;

static const char *Vulnerable = R"(
int lookup(char *table, int idx) {
  if (idx < 64) {
    int v = table[idx];
    return table[v & 63];
  }
  return -1;
}
int main() {
  char req[8];
  read_input(req, 1);
  char *table = malloc(64);
  return lookup(table, req[0]);
}
)";

// The same program with the mitigation: a serializing fence right after
// the bounds check, so speculation cannot reach the loads.
static const char *Patched = R"(
int lookup(char *table, int idx) {
  if (idx < 64) {
    fence();
    int v = table[idx];
    return table[v & 63];
  }
  return -1;
}
int main() {
  char req[8];
  read_input(req, 1);
  char *table = malloc(64);
  return lookup(table, req[0]);
}
)";

static size_t scan(const char *Label, const char *Src) {
  support::ExitOnError Exit("patch_and_verify: ");
  Scanner S(Exit(ScanConfig::preset("teapot")));
  Exit(S.loadSource(Src));
  Exit(S.rewrite());
  // The --stats-style dump: what each pipeline pass added, and how long
  // it took (the RewriteResult carries the PassManager's measurements).
  printf("%s\n", Label);
  printf("  rewriter pass statistics:\n%s",
         S.rewriteResult()->Stats.format().c_str());

  // Drive the victim across the interesting boundary values.
  ScanResult R =
      Exit(S.runInputs({{0}, {10}, {63}, {64}, {65}, {128}, {200}, {255}}));

  printf("  simulations: %llu, serializing rollbacks: %llu\n",
         static_cast<unsigned long long>(R.Simulations),
         static_cast<unsigned long long>(R.Rollbacks[static_cast<size_t>(
             isa::RollbackReason::Serializing)]));
  if (R.Gadgets.empty())
    printf("  no gadgets\n");
  for (const auto &G : R.Gadgets)
    printf("  %s\n", G.describe().c_str());
  return R.Gadgets.size();
}

int main() {
  size_t Before = scan("[1] scanning the vulnerable build:", Vulnerable);
  size_t After = scan("\n[2] scanning the lfence-patched build:", Patched);
  if (Before > 0 && After == 0) {
    printf("\nverified: the fence removed all %zu gadget(s).\n", Before);
    return 0;
  }
  printf("\nunexpected result: before=%zu after=%zu\n", Before, After);
  return 1;
}
