//===- examples/patch_and_verify.cpp - Find, patch with lfence, re-scan -----===//
//
// The remediation loop a Teapot user runs: scan a binary, find a
// Spectre-V1 gadget, patch the vulnerable bounds check with a serializing
// fence (the standard lfence mitigation), and re-scan to verify the
// gadget is gone — the workflow Section 6.2.3's SpecFuzz-compatible
// report format exists to support.
//
//   $ ./patch_and_verify
//
//===----------------------------------------------------------------------===//

#include "core/TeapotRewriter.h"
#include "lang/MiniCC.h"
#include "workloads/Harness.h"

#include <cstdio>

using namespace teapot;

static const char *Vulnerable = R"(
int lookup(char *table, int idx) {
  if (idx < 64) {
    int v = table[idx];
    return table[v & 63];
  }
  return -1;
}
int main() {
  char req[8];
  read_input(req, 1);
  char *table = malloc(64);
  return lookup(table, req[0]);
}
)";

// The same program with the mitigation: a serializing fence right after
// the bounds check, so speculation cannot reach the loads.
static const char *Patched = R"(
int lookup(char *table, int idx) {
  if (idx < 64) {
    fence();
    int v = table[idx];
    return table[v & 63];
  }
  return -1;
}
int main() {
  char req[8];
  read_input(req, 1);
  char *table = malloc(64);
  return lookup(table, req[0]);
}
)";

static size_t scan(const char *Label, const char *Src) {
  auto Bin = lang::compile(Src);
  if (!Bin) {
    fprintf(stderr, "compile error: %s\n", Bin.message().c_str());
    exit(1);
  }
  auto RW = core::rewriteBinary(*Bin, core::RewriterOptions());
  if (!RW) {
    fprintf(stderr, "rewrite error: %s\n", RW.message().c_str());
    exit(1);
  }
  // The --stats-style dump: what each pipeline pass added, and how long
  // it took (RewriteResult carries the PassManager's measurements).
  printf("%s\n", Label);
  printf("  rewriter pass statistics:\n%s", RW->Stats.format().c_str());
  workloads::InstrumentedTarget T(*RW, runtime::RuntimeOptions());
  // Drive the victim across the interesting boundary values.
  for (uint8_t Idx : {0, 10, 63, 64, 65, 128, 200, 255})
    T.execute({Idx});

  printf("  simulations: %llu, serializing rollbacks: %llu\n",
         static_cast<unsigned long long>(T.RT.Stats.Simulations),
         static_cast<unsigned long long>(T.RT.Stats.Rollbacks[static_cast<
             size_t>(isa::RollbackReason::Serializing)]));
  if (T.RT.Reports.unique().empty())
    printf("  no gadgets\n");
  for (const auto &R : T.RT.Reports.unique())
    printf("  %s\n", R.describe().c_str());
  return T.RT.Reports.unique().size();
}

int main() {
  size_t Before = scan("[1] scanning the vulnerable build:", Vulnerable);
  size_t After = scan("\n[2] scanning the lfence-patched build:", Patched);
  if (Before > 0 && After == 0) {
    printf("\nverified: the fence removed all %zu gadget(s).\n", Before);
    return 0;
  }
  printf("\nunexpected result: before=%zu after=%zu\n", Before, After);
  return 1;
}
