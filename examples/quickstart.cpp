//===- examples/quickstart.cpp - Five-minute tour of the Teapot API ---------===//
//
// Compiles the canonical Spectre-V1 victim (Listing 1 of the paper),
// statically rewrites it with Speculation Shadows, runs it on one
// out-of-bounds input, and prints the gadget reports.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "core/TeapotRewriter.h"
#include "support/StringUtils.h"
#include "lang/MiniCC.h"
#include "workloads/Harness.h"

#include <cstdio>

using namespace teapot;

// Listing 1, as a runnable program: an attacker-controlled index, a
// bounds check, and a dependent second access that transmits the
// speculatively loaded value.
static const char *Victim = R"(
int main() {
  char idx8[8];
  read_input(idx8, 1);
  int idx = idx8[0];
  char *foo = malloc(64);
  int baz = 0;
  if (idx < 64) {          // B1: the mispredicted bounds check
    int secret = foo[idx]; // L1: speculative out-of-bounds load
    baz = foo[secret & 63];// L2: cache-channel transmitter
  }
  return baz;
}
)";

int main() {
  // 1. Build the victim binary (stands in for any COTS TBF binary).
  auto Bin = lang::compile(Victim);
  if (!Bin) {
    fprintf(stderr, "compile error: %s\n", Bin.message().c_str());
    return 1;
  }
  Bin->strip(); // Teapot needs no symbols

  // 2. Static rewriting: disassemble, clone Real/Shadow copies, insert
  //    trampolines, markers, and the Kasper-policy instrumentation.
  auto RW = core::rewriteBinary(*Bin, core::RewriterOptions());
  if (!RW) {
    fprintf(stderr, "rewrite error: %s\n", RW.message().c_str());
    return 1;
  }
  printf("rewritten: real text %s..%s, shadow text %s..%s, %zu branch "
         "sites\n",
         toHex(RW->Meta.RealTextStart).c_str(),
         toHex(RW->Meta.RealTextEnd).c_str(),
         toHex(RW->Meta.ShadowTextStart).c_str(),
         toHex(RW->Meta.ShadowTextEnd).c_str(),
         RW->Meta.Trampolines.size());

  // 3. Run the instrumented binary on one malicious input: index 200 is
  //    architecturally rejected by the bounds check, but the simulated
  //    misprediction executes the wrong path and the runtime flags it.
  workloads::InstrumentedTarget Target(*RW, runtime::RuntimeOptions());
  Target.execute({200});

  printf("program exited with status %llu after %llu instructions "
         "(%llu simulations)\n",
         static_cast<unsigned long long>(Target.LastStop.ExitStatus),
         static_cast<unsigned long long>(Target.M.executedInsts()),
         static_cast<unsigned long long>(Target.RT.Stats.Simulations));

  // 4. The reports.
  if (Target.RT.Reports.unique().empty()) {
    printf("no gadgets found (unexpected!)\n");
    return 1;
  }
  for (const auto &R : Target.RT.Reports.unique())
    printf("  FOUND %s\n", R.describe().c_str());
  return 0;
}
