//===- examples/quickstart.cpp - Five-minute tour of the Teapot API ---------===//
//
// Compiles the canonical Spectre-V1 victim (Listing 1 of the paper),
// statically rewrites it with Speculation Shadows, runs it on one
// out-of-bounds input, and prints the gadget reports — all through the
// teapot::Scanner facade's three calls: load, rewrite, run.
//
//   $ ./quickstart
//
//===----------------------------------------------------------------------===//

#include "api/Scanner.h"
#include "support/StringUtils.h"

#include <cstdio>

using namespace teapot;

// Listing 1, as a runnable program: an attacker-controlled index, a
// bounds check, and a dependent second access that transmits the
// speculatively loaded value.
static const char *Victim = R"(
int main() {
  char idx8[8];
  read_input(idx8, 1);
  int idx = idx8[0];
  char *foo = malloc(64);
  int baz = 0;
  if (idx < 64) {          // B1: the mispredicted bounds check
    int secret = foo[idx]; // L1: speculative out-of-bounds load
    baz = foo[secret & 63];// L2: cache-channel transmitter
  }
  return baz;
}
)";

int main() {
  support::ExitOnError Exit("quickstart: ");

  // 1. One scanner, configured by preset. "teapot" is the paper's full
  //    configuration: Speculation Shadows + Kasper DIFT.
  Scanner S(Exit(ScanConfig::preset("teapot")));

  // 2. Load: build the victim binary (stands in for any COTS TBF
  //    binary).
  Exit(S.loadSource(Victim));

  // 3. Rewrite (on a stripped copy — Teapot needs no symbols):
  //    disassemble, clone Real/Shadow copies, insert trampolines,
  //    markers, and the Kasper-policy instrumentation.
  Exit(S.rewrite());
  const core::RewriteResult *RW = S.rewriteResult();
  printf("rewritten: real text %s..%s, shadow text %s..%s, %zu branch "
         "sites\n",
         toHex(RW->Meta.RealTextStart).c_str(),
         toHex(RW->Meta.RealTextEnd).c_str(),
         toHex(RW->Meta.ShadowTextStart).c_str(),
         toHex(RW->Meta.ShadowTextEnd).c_str(),
         RW->Meta.Trampolines.size());

  // 4. Run the instrumented binary on one malicious input: index 200 is
  //    architecturally rejected by the bounds check, but the simulated
  //    misprediction executes the wrong path and the runtime flags it.
  ScanResult R = Exit(S.runInputs({{200}}));

  printf("executed %llu guest instructions (%llu simulations)\n",
         static_cast<unsigned long long>(R.GuestInsts),
         static_cast<unsigned long long>(R.Simulations));

  // 5. The reports — structured records, ready for R.toJson() too.
  if (R.Gadgets.empty()) {
    printf("no gadgets found (unexpected!)\n");
    return 1;
  }
  for (const auto &G : R.Gadgets)
    printf("  FOUND %s\n", G.describe().c_str());
  return 0;
}
