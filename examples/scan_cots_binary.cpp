//===- examples/scan_cots_binary.cpp - The full Figure 3 workflow -----------===//
//
// End-to-end COTS scan: take a *stripped* binary (one of the evaluation
// workloads, by name), statically rewrite it, then run a coverage-guided
// fuzzing campaign against the instrumented binary and report every
// unique gadget with its controllability/channel classification.
//
//   $ ./scan_cots_binary [workload] [iterations]
//   $ ./scan_cots_binary brotli 2000
//
//===----------------------------------------------------------------------===//

#include "core/TeapotRewriter.h"
#include "fuzz/Fuzzer.h"
#include "lang/MiniCC.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <cstdio>
#include <cstdlib>

using namespace teapot;
using namespace teapot::workloads;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "libhtp";
  uint64_t Iters = argc > 2 ? strtoull(argv[2], nullptr, 10) : 800;

  const Workload *W = findWorkload(Name);
  if (!W) {
    fprintf(stderr, "unknown workload '%s' (try: jsmn libyaml libhtp "
                    "brotli openssl)\n",
            Name);
    return 1;
  }

  // The COTS binary: compiled, then stripped of symbols and relocations.
  auto Bin = lang::compile(W->Source);
  if (!Bin) {
    fprintf(stderr, "compile error: %s\n", Bin.message().c_str());
    return 1;
  }
  Bin->strip();
  printf("[*] %s: %zu bytes of stripped text\n", Name,
         Bin->findSection(".text")->Bytes.size());

  auto RW = core::rewriteBinary(*Bin, core::RewriterOptions());
  if (!RW) {
    fprintf(stderr, "rewrite error: %s\n", RW.message().c_str());
    return 1;
  }
  printf("[*] instrumented: %zu branch sites, %zu marker sites, "
         "%u+%u coverage guards\n",
         RW->Meta.Trampolines.size(), RW->Meta.MarkerSites.size(),
         RW->Meta.NumNormalGuards, RW->Meta.NumSpecGuards);

  InstrumentedTarget Target(*RW, runtime::RuntimeOptions());
  Target.RT.Reports.OnNewGadget = [](const runtime::GadgetReport &R) {
    printf("    [gadget] %s\n", R.describe().c_str());
  };

  fuzz::FuzzerOptions FO;
  FO.Seed = 1;
  FO.MaxIterations = Iters;
  FO.MaxInputLen = 512;
  fuzz::Fuzzer F(Target, FO);
  for (const auto &Seed : W->Seeds())
    F.addSeed(Seed);

  printf("[*] fuzzing for %llu executions...\n",
         static_cast<unsigned long long>(Iters));
  fuzz::FuzzerStats S = F.run();

  printf("\n[*] campaign summary\n");
  printf("    executions:        %llu\n",
         static_cast<unsigned long long>(S.Executions));
  printf("    corpus size:       %zu\n", F.corpus().size());
  printf("    normal coverage:   %zu guards\n",
         Target.RT.Cov.normalCovered());
  printf("    spec coverage:     %zu guards\n",
         Target.RT.Cov.specCovered());
  printf("    simulations:       %llu\n",
         static_cast<unsigned long long>(Target.RT.Stats.Simulations));
  printf("    unique gadgets:    %zu\n",
         Target.RT.Reports.unique().size());
  return 0;
}
