//===- examples/scan_cots_binary.cpp - The full Figure 3 workflow -----------===//
//
// End-to-end COTS scan through the teapot::Scanner facade: take a
// *stripped* binary (one of the evaluation workloads, by name),
// statically rewrite it per the chosen preset, run a parallel
// coverage-guided fuzzing campaign against it, and report every unique
// gadget with its controllability/channel classification — optionally as
// a machine-readable JSON scan result.
//
//   $ ./scan_cots_binary [--workload NAME] [--iters N] [--workers N]
//                        [--preset NAME] [--json FILE]
//   $ ./scan_cots_binary --workload brotli --iters 2000 --workers 4
//   $ ./scan_cots_binary --workload jsmn --preset specfuzz-baseline
//                          --json scan.json
//
// Campaigns are durable: --corpus-out snapshots the full campaign state
// (teapot.corpus.v1), --corpus-in + --resume continues it
// byte-identically (raise --iters to extend a finished campaign), and
// --corpus-in alone reuses a previous corpus as seeds for a fresh
// campaign. --baseline diffs the scan against a previous ScanResult
// JSON and exits 2 on gadget regressions — the CI gate.
//
//   $ ./scan_cots_binary --workload jsmn --iters 400 --corpus-out c.json
//   $ ./scan_cots_binary --workload jsmn --iters 800
//                          --corpus-in c.json --resume
//   $ ./scan_cots_binary --workload jsmn --iters 400 --inject
//                          --baseline tests/golden/jsmn-injected.scan.json
//
//===----------------------------------------------------------------------===//

#include "api/ScanDiff.h"
#include "api/Scanner.h"
#include "support/ArtifactWriter.h"
#include "support/FaultInjector.h"
#include "support/File.h"
#include "support/StringUtils.h"
#include "workloads/Programs.h"

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <optional>
#include <set>

using namespace teapot;

/// Set by the SIGINT handler; polled at epoch barriers so an interrupted
/// campaign stops at a deterministic point and still flushes its
/// artifacts (exit code 130).
static volatile sig_atomic_t GotSigInt = 0;

static void onSigInt(int) { GotSigInt = 1; }

static void usage(FILE *To) {
  fprintf(To,
          "usage: scan_cots_binary [options]\n"
          "  --workload NAME   evaluation workload (default libhtp; see\n"
          "                    --list-workloads), or proggen:SEED[:SIZE] "
          "for a\n"
          "                    deterministic generated program\n"
          "  --list-workloads  print the workload registry and exit\n"
          "  --iters N         total campaign executions (default 800)\n"
          "  --workers N       campaign worker threads (default 1)\n"
          "  --preset NAME     teapot | teapot-nodift | specfuzz-baseline |"
          " native\n"
          "  --engine NAME     execution tier: interp | block | jit "
          "(default jit;\n"
          "                    jit falls back to block on non-x86-64 "
          "hosts)\n"
          "  --inject          splice the Table 3 artificial gadgets in "
          "before scanning\n"
          "  --json FILE       write the structured ScanResult as JSON\n"
          "  --corpus-in FILE  teapot.corpus.v1 snapshot: import its corpus "
          "as seeds,\n"
          "                    or resume the whole campaign with --resume\n"
          "  --corpus-out FILE write the campaign state snapshot after the "
          "scan\n"
          "  --resume          continue the --corpus-in campaign "
          "byte-identically\n"
          "  --baseline FILE   diff against a previous ScanResult JSON; "
          "exit 2 on\n"
          "                    lost/weakened gadgets (injected sites only "
          "when the\n"
          "                    baseline has injection ground truth)\n"
          "  --max-epochs N    stop after N campaign epochs even with "
          "budget left\n"
          "  --fault-plan P    deterministic fault injection plan "
          "(docs/ROBUSTNESS.md),\n"
          "                    e.g. 'worker.execute@every:97;file.write@1'\n"
          "  --quarantine-out FILE  write contained crashes as a\n"
          "                    teapot.quarantine.v1 artifact\n"
          "  --replay-quarantine FILE  replay every record of a quarantine\n"
          "                    artifact instead of scanning; exit 0 iff "
          "all crash\n"
          "                    signatures reproduce\n"
          "  --help            this text\n"
          "SIGINT stops the campaign at the next epoch barrier, flushes "
          "--json/\n"
          "--corpus-out/--quarantine-out, and exits 130.\n"
          "exit codes: 0 = ok, 1 = errors, 2 = gadget regressions vs "
          "--baseline,\n"
          "            130 = interrupted (artifacts flushed)\n");
}

int main(int argc, char **argv) {
  support::ExitOnError Exit("scan_cots_binary: ");

  std::string Workload = "libhtp";
  std::string Preset = "teapot";
  vm::Machine::Engine Engine = vm::Machine::Engine::Jit;
  uint64_t Iters = 800;
  unsigned Workers = 1;
  uint64_t MaxEpochs = 0;
  bool Inject = false;
  bool Resume = false;
  std::string FaultPlan;
  const char *JsonPath = nullptr;
  const char *CorpusInPath = nullptr;
  const char *CorpusOutPath = nullptr;
  const char *QuarantineOutPath = nullptr;
  const char *ReplayPath = nullptr;
  const char *BaselinePath = nullptr;

  auto NextOperand = [&](int &I) -> const char * {
    if (I + 1 >= argc) {
      fprintf(stderr, "scan_cots_binary: %s requires an operand\n", argv[I]);
      exit(1);
    }
    return argv[++I];
  };
  for (int I = 1; I < argc; ++I) {
    if (!strcmp(argv[I], "--workload")) {
      Workload = NextOperand(I);
    } else if (!strcmp(argv[I], "--list-workloads")) {
      printf("workloads (--workload NAME, matched case-insensitively):\n");
      for (const workloads::Workload &W : workloads::allWorkloads())
        printf("  %-10s %s\n", W.Name, W.Desc);
      printf("  %-10s %s\n", "proggen:S[:Z]",
             "deterministic generated program (seed S, size knob Z)");
      return 0;
    } else if (!strcmp(argv[I], "--iters")) {
      Iters = Exit(support::parseUInt(NextOperand(I), "--iters",
                                      1'000'000'000ULL));
    } else if (!strcmp(argv[I], "--workers")) {
      Workers = static_cast<unsigned>(Exit(support::parseUInt(
          NextOperand(I), "--workers", ScanConfig::MaxWorkers)));
    } else if (!strcmp(argv[I], "--preset")) {
      Preset = NextOperand(I);
    } else if (!strcmp(argv[I], "--engine")) {
      const char *Name = NextOperand(I);
      if (!vm::parseEngineName(Name, Engine)) {
        fprintf(stderr,
                "scan_cots_binary: --engine expects interp, block, or "
                "jit (got '%s')\n",
                Name);
        return 1;
      }
    } else if (!strcmp(argv[I], "--inject")) {
      Inject = true;
    } else if (!strcmp(argv[I], "--json")) {
      JsonPath = NextOperand(I);
    } else if (!strcmp(argv[I], "--corpus-in")) {
      CorpusInPath = NextOperand(I);
    } else if (!strcmp(argv[I], "--corpus-out")) {
      CorpusOutPath = NextOperand(I);
    } else if (!strcmp(argv[I], "--resume")) {
      Resume = true;
    } else if (!strcmp(argv[I], "--baseline")) {
      BaselinePath = NextOperand(I);
    } else if (!strcmp(argv[I], "--max-epochs")) {
      MaxEpochs = Exit(support::parseUInt(NextOperand(I), "--max-epochs",
                                          1'000'000'000ULL));
    } else if (!strcmp(argv[I], "--fault-plan")) {
      FaultPlan = NextOperand(I);
    } else if (!strcmp(argv[I], "--quarantine-out")) {
      QuarantineOutPath = NextOperand(I);
    } else if (!strcmp(argv[I], "--replay-quarantine")) {
      ReplayPath = NextOperand(I);
    } else if (!strcmp(argv[I], "--help")) {
      usage(stdout);
      return 0;
    } else {
      fprintf(stderr, "scan_cots_binary: unknown argument '%s'\n", argv[I]);
      usage(stderr);
      return 1;
    }
  }

  if (Resume && !CorpusInPath) {
    fprintf(stderr, "scan_cots_binary: --resume requires --corpus-in\n");
    return 1;
  }

  // Validate the workload name up front with a friendly diagnostic that
  // names every valid spelling (Scanner::loadWorkload would also fail,
  // but with less context). proggen: spellings are validated by the
  // facade itself.
  if (Workload.compare(0, 8, "proggen:") != 0 &&
      !workloads::findWorkload(Workload)) {
    fprintf(stderr,
            "scan_cots_binary: unknown workload '%s'. Valid workloads:\n",
            Workload.c_str());
    for (const workloads::Workload &W : workloads::allWorkloads())
      fprintf(stderr, "  %-10s %s\n", W.Name, W.Desc);
    fprintf(stderr, "  %-10s deterministic generated program\n",
            "proggen:S[:Z]");
    return 1;
  }

  ScanConfig Cfg = Exit(ScanConfig::preset(Preset));
  Cfg.Campaign.Seed = 1;
  Cfg.Campaign.TotalIterations = Iters;
  Cfg.Campaign.Workers = Workers;
  Cfg.Campaign.SyncInterval = 256;
  Cfg.Campaign.MaxInputLen = 512;
  Cfg.Campaign.MaxEpochs = MaxEpochs;
  Cfg.InjectGadgets = Inject;
  Cfg.Engine = Engine;
  Cfg.FaultPlan = FaultPlan;

  // The tool's artifact I/O has its own injector (one owner per
  // injector): file.* clauses of --fault-plan drive it, campaign-level
  // sites drive the per-worker target injectors.
  support::FaultInjector FileFaults(
      Exit(support::FaultPlan::parse(FaultPlan)));
  support::ArtifactWriter Writer;
  Writer.setFaults(&FileFaults);
  Writer.OnWrite = [](const std::string &Path, size_t Bytes) {
    printf("[*] wrote %s (%zu bytes)\n", Path.c_str(), Bytes);
  };

  Scanner S(Cfg);
  Exit(S.loadWorkload(Workload));
  printf("[*] %s: %zu bytes of text\n", Workload.c_str(),
         S.binary()->findSection(".text")->Bytes.size());

  Exit(S.rewrite());
  Exit(S.config().validate());

  if (ReplayPath) {
    json::Value Artifact = Exit(
        json::parse(Exit(support::readFile(ReplayPath, &FileFaults))));
    size_t N = Exit(S.replayQuarantine(Artifact));
    printf("[*] replayed %zu quarantined input(s) from %s: all crash "
           "signatures reproduce\n",
           N, ReplayPath);
    return 0;
  }

  if (CorpusInPath) {
    json::Value Snapshot = Exit(
        json::parse(Exit(support::readFile(CorpusInPath, &FileFaults))));
    if (Resume) {
      Exit(S.resume(std::move(Snapshot)));
      printf("[*] resuming campaign state from %s\n", CorpusInPath);
    } else {
      size_t N = Exit(S.importCorpus(Snapshot));
      printf("[*] imported %zu corpus entries from %s as seeds\n", N,
             CorpusInPath);
    }
  }

  // The regression baseline is read before the campaign so a bad path
  // or malformed file fails fast instead of discarding the whole scan.
  std::optional<ScanResult> Baseline;
  if (BaselinePath)
    Baseline = Exit(
        ScanResult::fromJsonString(Exit(support::readFile(BaselinePath))));

  // Artifacts are written atomically (temp file + rename, bounded
  // retries) at the end, so a failed scan never truncates an existing
  // file. Probe each path up front anyway — a bad directory must fail
  // fast instead of discarding the whole scan. The probe opens in
  // append mode: it never clobbers existing bytes.
  Exit(Writer.probe(JsonPath ? JsonPath : ""));
  Exit(Writer.probe(CorpusOutPath ? CorpusOutPath : ""));
  Exit(Writer.probe(QuarantineOutPath ? QuarantineOutPath : ""));
  if (const workloads::InjectionResult *Inj = S.injection())
    printf("[*] injected %zu artificial gadget(s) (%zu unreachable, "
           "input slot %s)\n",
           Inj->SiteMarkers.size(), Inj->UnreachableMarkers.size(),
           toHex(Inj->InjInputAddr).c_str());
  if (const core::RewriteResult *RW = S.rewriteResult())
    printf("[*] instrumented (%s): %zu branch sites, %zu marker sites, "
           "%u+%u coverage guards\n",
           Preset.c_str(), RW->Meta.Trampolines.size(),
           RW->Meta.MarkerSites.size(), RW->Meta.NumNormalGuards,
           RW->Meta.NumSpecGuards);
  else
    printf("[*] native preset: running the original binary, no detector\n");

  S.OnGadget = [](const runtime::GadgetReport &R) {
    printf("    [gadget] %s\n", R.describe().c_str());
  };
  S.OnEpoch = [&S](const fuzz::CampaignProgress &P) {
    printf("[epoch %3llu] execs %7llu | corpus %5zu | cov %zu+%zu | "
           "gadgets %zu",
           static_cast<unsigned long long>(P.Epoch),
           static_cast<unsigned long long>(P.Executions), P.CorpusSize,
           P.NormalEdges, P.SpecEdges, P.UniqueGadgets);
    if (P.Quarantined)
      printf(" | quarantined %zu", P.Quarantined);
    printf("\n");
    if (GotSigInt)
      S.requestStop();
  };
  signal(SIGINT, onSigInt);

  printf("[*] fuzzing for %llu executions on %u worker(s)...\n",
         static_cast<unsigned long long>(Iters), Workers);
  ScanResult R = Exit(S.run());
  if (GotSigInt)
    printf("[*] interrupted: campaign stopped at epoch %llu, flushing "
           "artifacts\n",
           static_cast<unsigned long long>(R.Epochs));

  printf("\n[*] campaign summary\n");
  printf("    engine:            %s\n", R.Engine.c_str());
  printf("    executions:        %llu (%.0f/sec)\n",
         static_cast<unsigned long long>(R.Executions), R.execsPerSec());
  printf("    epochs:            %llu\n",
         static_cast<unsigned long long>(R.Epochs));
  printf("    corpus size:       %llu\n",
         static_cast<unsigned long long>(R.CorpusSize));
  printf("    normal coverage:   %llu guards\n",
         static_cast<unsigned long long>(R.NormalEdges));
  printf("    spec coverage:     %llu guards\n",
         static_cast<unsigned long long>(R.SpecEdges));
  printf("    cross-worker imports: %llu\n",
         static_cast<unsigned long long>(R.Imports));
  printf("    unique gadgets:    %zu\n", R.Gadgets.size());
  if (R.Quarantined || R.Degradations || R.WatchdogTrips ||
      R.FaultsInjected)
    printf("    robustness:        %llu quarantined, %llu degradations, "
           "%llu watchdog trips, %llu faults injected\n",
           static_cast<unsigned long long>(R.Quarantined),
           static_cast<unsigned long long>(R.Degradations),
           static_cast<unsigned long long>(R.WatchdogTrips),
           static_cast<unsigned long long>(R.FaultsInjected));
  if (!R.InjectedSites.empty()) {
    std::set<uint64_t> Markers(R.InjectedSites.begin(),
                               R.InjectedSites.end());
    std::set<uint64_t> Found;
    for (const auto &G : R.Gadgets)
      if (Markers.count(G.Site))
        Found.insert(G.Site);
    printf("    injected ground truth: %zu/%zu sites detected\n",
           Found.size(), Markers.size());
  }
  for (size_t I = 0; I != R.PerWorker.size(); ++I) {
    const ScanWorkerStats &WS = R.PerWorker[I];
    printf("      worker %zu: %llu execs, %llu adds, %llu imports, "
           "shard %llu, cov %llu+%llu\n",
           I, static_cast<unsigned long long>(WS.Executions),
           static_cast<unsigned long long>(WS.CorpusAdds),
           static_cast<unsigned long long>(WS.Imports),
           static_cast<unsigned long long>(WS.ShardSize),
           static_cast<unsigned long long>(WS.NormalEdges),
           static_cast<unsigned long long>(WS.SpecEdges));
  }

  // Sibling artifacts first so the scan JSON can record the I/O retries
  // their atomic writes spent (deterministic under a fault plan).
  if (CorpusOutPath)
    Exit(Writer.write(CorpusOutPath, Exit(S.saveState()).dump(true) + "\n"));
  if (QuarantineOutPath)
    Exit(Writer.write(QuarantineOutPath,
                      Exit(S.quarantineJson()).dump(true) + "\n"));
  if (JsonPath) {
    R.IoRetries = Writer.ioRetries();
    Exit(Writer.write(JsonPath, R.toJsonString()));
  }

  if (Baseline) {
    ScanDiffOptions DO;
    // Gate on the reliably re-findable injected sites when the baseline
    // carries that ground truth; a baseline without injection would
    // make the injected-only gate vacuous (empty gate set, always OK),
    // so such baselines gate on the full gadget set instead.
    DO.InjectedOnly = !Baseline->InjectedSites.empty();
    ScanDiff D = diffScans(*Baseline, R, DO);
    printf("\n%s", D.describe().c_str());
    if (D.hasRegressions())
      return 2;
  }
  return GotSigInt ? 130 : 0;
}
