//===- examples/scan_cots_binary.cpp - The full Figure 3 workflow -----------===//
//
// End-to-end COTS scan: take a *stripped* binary (one of the evaluation
// workloads, by name), statically rewrite it, then run a parallel
// coverage-guided fuzzing campaign against the instrumented binary and
// report every unique gadget with its controllability/channel
// classification. With one worker (the default) the campaign is
// byte-identical to the classic single-threaded fuzzer; more workers
// shard the corpus across threads and sync discoveries every epoch.
//
//   $ ./scan_cots_binary [workload] [iterations] [workers]
//   $ ./scan_cots_binary brotli 2000 4
//
//===----------------------------------------------------------------------===//

#include "core/TeapotRewriter.h"
#include "fuzz/Campaign.h"
#include "lang/MiniCC.h"
#include "workloads/Harness.h"
#include "workloads/Programs.h"

#include <chrono>
#include <cstdio>
#include <cstdlib>

using namespace teapot;
using namespace teapot::workloads;

int main(int argc, char **argv) {
  const char *Name = argc > 1 ? argv[1] : "libhtp";
  uint64_t Iters = argc > 2 ? strtoull(argv[2], nullptr, 10) : 800;
  unsigned Workers =
      argc > 3 ? static_cast<unsigned>(strtoul(argv[3], nullptr, 10)) : 1;

  const Workload *W = findWorkload(Name);
  if (!W) {
    fprintf(stderr, "unknown workload '%s' (try: jsmn libyaml libhtp "
                    "brotli openssl)\n",
            Name);
    return 1;
  }

  // The COTS binary: compiled, then stripped of symbols and relocations.
  auto Bin = lang::compile(W->Source);
  if (!Bin) {
    fprintf(stderr, "compile error: %s\n", Bin.message().c_str());
    return 1;
  }
  Bin->strip();
  printf("[*] %s: %zu bytes of stripped text\n", Name,
         Bin->findSection(".text")->Bytes.size());

  auto RW = core::rewriteBinary(*Bin, core::RewriterOptions());
  if (!RW) {
    fprintf(stderr, "rewrite error: %s\n", RW.message().c_str());
    return 1;
  }
  printf("[*] instrumented: %zu branch sites, %zu marker sites, "
         "%u+%u coverage guards\n",
         RW->Meta.Trampolines.size(), RW->Meta.MarkerSites.size(),
         RW->Meta.NumNormalGuards, RW->Meta.NumSpecGuards);

  fuzz::CampaignOptions CO;
  CO.Seed = 1;
  CO.TotalIterations = Iters;
  CO.Workers = Workers;
  CO.SyncInterval = 256;
  CO.MaxInputLen = 512;
  fuzz::Campaign C(instrumentedTargetFactory(*RW, runtime::RuntimeOptions()),
                   CO);
  for (const auto &Seed : W->Seeds())
    C.addSeed(Seed);

  C.gadgets().OnNewGadget = [](const runtime::GadgetReport &R) {
    printf("    [gadget] %s\n", R.describe().c_str());
  };
  auto Start = std::chrono::steady_clock::now();
  C.OnEpoch = [&](const fuzz::CampaignProgress &P) {
    double Secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - Start)
                      .count();
    printf("[epoch %3llu] execs %7llu | corpus %5zu | cov %zu+%zu | "
           "gadgets %zu | %.0f exec/s\n",
           static_cast<unsigned long long>(P.Epoch),
           static_cast<unsigned long long>(P.Executions), P.CorpusSize,
           P.NormalEdges, P.SpecEdges, P.UniqueGadgets,
           Secs > 0 ? static_cast<double>(P.Executions) / Secs : 0.0);
  };

  printf("[*] fuzzing for %llu executions on %u worker(s)...\n",
         static_cast<unsigned long long>(Iters), Workers);
  fuzz::CampaignStats S = C.run();
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  printf("\n[*] campaign summary\n");
  printf("    executions:        %llu (%.0f/sec)\n",
         static_cast<unsigned long long>(S.Executions),
         Secs > 0 ? static_cast<double>(S.Executions) / Secs : 0.0);
  printf("    epochs:            %llu\n",
         static_cast<unsigned long long>(S.Epochs));
  printf("    corpus size:       %zu\n", C.corpus().size());
  printf("    normal coverage:   %zu guards\n", S.NormalEdges);
  printf("    spec coverage:     %zu guards\n", S.SpecEdges);
  printf("    cross-worker imports: %llu\n",
         static_cast<unsigned long long>(S.Imports));
  printf("    unique gadgets:    %zu\n", S.UniqueGadgets);
  for (const fuzz::WorkerStats &WS : S.PerWorker)
    printf("      worker %zu: %llu execs, %llu adds, %llu imports, "
           "shard %zu, cov %zu+%zu\n",
           static_cast<size_t>(&WS - S.PerWorker.data()),
           static_cast<unsigned long long>(WS.Executions),
           static_cast<unsigned long long>(WS.CorpusAdds),
           static_cast<unsigned long long>(WS.Imports), WS.ShardSize,
           WS.NormalEdges, WS.SpecEdges);
  return 0;
}
